module F = Taco_tensor.Format
module L = Taco_tensor.Level
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module Coo = Taco_tensor.Coo
module Gen = Taco_tensor.Gen
module Suite = Taco_tensor.Suite
module Prng = Taco_support.Prng

let check_dense = Helpers.check_dense

(* ------------------------------------------------------------------ *)
(* Dense                                                               *)
(* ------------------------------------------------------------------ *)

let test_dense_get_set () =
  let d = D.create [| 2; 3 |] in
  D.set d [| 1; 2 |] 5.;
  D.add_at d [| 1; 2 |] 1.5;
  Alcotest.(check (float 0.)) "get" 6.5 (D.get d [| 1; 2 |]);
  Alcotest.(check (float 0.)) "other cells zero" 0. (D.get d [| 0; 0 |]);
  Alcotest.(check int) "nnz" 1 (D.nnz d);
  Alcotest.(check int) "size" 6 (D.size d)

let test_dense_row_major () =
  let d = D.init [| 2; 3 |] (fun c -> float_of_int ((c.(0) * 3) + c.(1))) in
  Alcotest.(check (array (float 0.))) "row-major layout"
    [| 0.; 1.; 2.; 3.; 4.; 5. |] (D.buffer d)

let test_dense_bounds () =
  let d = D.create [| 2; 2 |] in
  Alcotest.check_raises "out of bounds" (Invalid_argument "Dense.offset: out of bounds")
    (fun () -> ignore (D.get d [| 2; 0 |]));
  Alcotest.check_raises "rank mismatch" (Invalid_argument "Dense.offset: rank mismatch")
    (fun () -> ignore (D.get d [| 0 |]))

let test_dense_scalar () =
  let d = D.create [||] in
  Alcotest.(check int) "scalar size" 1 (D.size d);
  D.set d [||] 3.;
  Alcotest.(check (float 0.)) "scalar get" 3. (D.get d [||])

let test_dense_map2 () =
  let a = D.init [| 2; 2 |] (fun c -> float_of_int c.(0)) in
  let b = D.init [| 2; 2 |] (fun c -> float_of_int c.(1)) in
  let s = D.map2 ( +. ) a b in
  Alcotest.(check (float 0.)) "sum at (1,1)" 2. (D.get s [| 1; 1 |])

(* ------------------------------------------------------------------ *)
(* Formats                                                             *)
(* ------------------------------------------------------------------ *)

let test_format_accessors () =
  Alcotest.(check int) "csr order" 2 (F.order F.csr);
  Alcotest.(check bool) "csr level 0 dense" true (L.equal (F.level F.csr 0) L.Dense);
  Alcotest.(check bool) "csr level 1 compressed" true
    (L.equal (F.level F.csr 1) L.Compressed);
  Alcotest.(check int) "csc stores columns first" 1 (F.mode_of_level F.csc 0);
  Alcotest.(check int) "csc level of mode 0" 1 (F.level_of_mode F.csc 0);
  Alcotest.(check bool) "dense_matrix all dense" true (F.is_all_dense F.dense_matrix);
  Alcotest.(check bool) "csf all compressed" true (F.is_all_compressed (F.csf 3))

let test_format_invalid () =
  Alcotest.check_raises "bad permutation"
    (Invalid_argument "Format.make: mode_order is not a permutation") (fun () ->
      ignore (F.make [ L.Dense; L.Dense ] ~mode_order:[ 0; 0 ]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Format.make: levels and mode_order lengths differ") (fun () ->
      ignore (F.make [ L.Dense ] ~mode_order:[ 0; 1 ]))

(* ------------------------------------------------------------------ *)
(* COO                                                                 *)
(* ------------------------------------------------------------------ *)

let test_coo_duplicates_sum () =
  let c = Coo.create [| 3; 3 |] in
  Coo.push c [| 1; 2 |] 1.5;
  Coo.push c [| 1; 2 |] 2.5;
  Coo.push c [| 0; 0 |] 1.;
  let coords, vals = Coo.sorted_unique ~perm:[| 0; 1 |] c in
  Alcotest.(check int) "two unique entries" 2 (Array.length vals);
  Alcotest.(check (array int)) "first coordinate" [| 0; 0 |] coords.(0);
  Alcotest.(check (float 0.)) "summed value" 4. vals.(1)

let test_coo_permuted_sort () =
  let c = Coo.create [| 2; 2 |] in
  Coo.push c [| 0; 1 |] 1.;
  Coo.push c [| 1; 0 |] 2.;
  (* Column-major permutation sorts by column first. *)
  let coords, _ = Coo.sorted_unique ~perm:[| 1; 0 |] c in
  Alcotest.(check (array int)) "column 0 first" [| 1; 0 |] coords.(0)

let test_coo_bounds () =
  let c = Coo.create [| 2; 2 |] in
  Alcotest.check_raises "coordinate out of bounds"
    (Invalid_argument "Coo.push: coordinate out of bounds") (fun () ->
      Coo.push c [| 0; 5 |] 1.)

(* ------------------------------------------------------------------ *)
(* Packing                                                             *)
(* ------------------------------------------------------------------ *)

let all_formats_2d =
  [
    ("csr", F.csr);
    ("csc", F.csc);
    ("dcsr", F.dcsr);
    ("dense", F.dense_matrix);
    ("dense_then_dense_swapped", F.make [ L.Dense; L.Dense ] ~mode_order:[ 1; 0 ]);
    ("compressed_dense", F.of_levels [ L.Compressed; L.Dense ]);
  ]

let test_pack_roundtrip_formats () =
  let d =
    D.init [| 4; 5 |] (fun c ->
        if (c.(0) + (2 * c.(1))) mod 3 = 0 then float_of_int ((c.(0) * 5) + c.(1) + 1)
        else 0.)
  in
  List.iter
    (fun (name, fmt) ->
      let t = T.of_dense d fmt in
      Helpers.get (T.validate t) |> ignore;
      check_dense (name ^ " roundtrip") d (T.to_dense t))
    all_formats_2d

let test_pack_get () =
  let prng = Prng.create 3 in
  let coo = Gen.random_coo prng ~dims:[| 6; 7 |] ~nnz:15 in
  let reference = Coo.to_dense coo in
  List.iter
    (fun (name, fmt) ->
      let t = T.pack coo fmt in
      D.iteri
        (fun coord expected ->
          if T.get t (Array.copy coord) <> expected then
            Alcotest.fail (Printf.sprintf "%s: get mismatch" name))
        reference)
    all_formats_2d

let test_pack_empty () =
  let t = T.zero [| 3; 4 |] F.csr in
  Alcotest.(check int) "no nonzeros" 0 (T.nnz t);
  check_dense "empty tensor" (D.create [| 3; 4 |]) (T.to_dense t)

let test_pack_csf_3d () =
  let prng = Prng.create 4 in
  let coo = Gen.random_coo prng ~dims:[| 3; 4; 5 |] ~nnz:10 in
  let t = T.pack coo (F.csf 3) in
  Helpers.get (T.validate t) |> ignore;
  check_dense "csf roundtrip" (Coo.to_dense coo) (T.to_dense t);
  Alcotest.(check int) "stored equals nnz for csf" 10 (T.stored t)

let test_csr_arrays () =
  let coo = Coo.create [| 2; 4 |] in
  Coo.push coo [| 0; 1 |] 10.;
  Coo.push coo [| 0; 3 |] 20.;
  Coo.push coo [| 1; 2 |] 30.;
  let t = T.pack coo F.csr in
  let pos, crd, vals = T.csr_arrays t in
  Alcotest.(check (array int)) "pos" [| 0; 2; 3 |] pos;
  Alcotest.(check (array int)) "crd" [| 1; 3; 2 |] crd;
  Alcotest.(check (array (float 0.))) "vals" [| 10.; 20.; 30. |] vals

let test_of_csr_validates () =
  Alcotest.(check bool) "invalid pos rejected" true
    (match T.of_csr ~rows:2 ~cols:2 [| 0; 2; 1 |] [| 0; 1 |] [| 1.; 2. |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unsorted crd rejected" true
    (match T.of_csr ~rows:1 ~cols:3 [| 0; 2 |] [| 2; 1 |] [| 1.; 2. |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_repack () =
  let prng = Prng.create 5 in
  let t = Gen.random prng ~dims:[| 5; 5 |] ~nnz:8 F.csr in
  let u = T.repack t F.csc in
  Alcotest.(check bool) "csc format" true (F.equal (T.format u) F.csc);
  check_dense "repack preserves values" (T.to_dense t) (T.to_dense u)

let test_equal () =
  let prng = Prng.create 6 in
  let t = Gen.random prng ~dims:[| 4; 4 |] ~nnz:5 F.csr in
  let u = T.repack t F.dcsr in
  Alcotest.(check bool) "equal across formats" true (T.equal t u)

(* ------------------------------------------------------------------ *)
(* Generators and the Table I suite                                    *)
(* ------------------------------------------------------------------ *)

let test_gen_exact_nnz () =
  let prng = Prng.create 7 in
  let t = Gen.random prng ~dims:[| 30; 40 |] ~nnz:100 F.csr in
  Alcotest.(check int) "stored = requested" 100 (T.stored t)

let test_gen_density () =
  let prng = Prng.create 8 in
  let t = Gen.random_density prng ~dims:[| 50; 50 |] ~density:0.02 F.csr in
  Alcotest.(check int) "density 2% of 2500" 50 (T.stored t)

let test_gen_overflow_dims () =
  (* Component count overflows 63-bit ints; falls back to rejection. *)
  let prng = Prng.create 9 in
  let coo =
    Gen.random_coo prng ~dims:[| 1 lsl 21; 1 lsl 21; 1 lsl 21 |] ~nnz:50
  in
  Alcotest.(check int) "entries drawn" 50 (Coo.length coo)

let test_suite_matrices () =
  Alcotest.(check int) "11 matrices" 11 (List.length Suite.matrices);
  let pwtk = List.nth Suite.matrices 9 in
  Alcotest.(check string) "pwtk name" "pwtk" pwtk.Suite.name;
  let scaled = Suite.scaled_matrix_entry ~scale:4 pwtk in
  Alcotest.(check int) "scaled rows" (217918 / 4) scaled.Suite.rows;
  Alcotest.(check int) "scaled nnz" (11524432 / 16) scaled.Suite.nnz

let test_suite_generate () =
  let e = List.hd Suite.matrices in
  let t = Suite.generate_matrix ~seed:1 ~scale:32 e in
  Helpers.get (T.validate t) |> ignore;
  let scaled = Suite.scaled_matrix_entry ~scale:32 e in
  Alcotest.(check int) "rows" scaled.Suite.rows (T.dims t).(0);
  let stored = T.stored t in
  (* The band may collide with the uniform fill; within 10%. *)
  if abs (stored - scaled.Suite.nnz) > scaled.Suite.nnz / 10 then
    Alcotest.failf "nnz %d too far from target %d" stored scaled.Suite.nnz

let test_suite_tensor_standins () =
  Alcotest.(check int) "3 tensors" 3 (List.length Suite.tensor_standins);
  let fb = List.hd Suite.tensor_standins in
  Alcotest.(check string) "facebook full size" "Facebook" fb.Suite.t_name;
  Alcotest.(check int) "facebook nnz published" 737_934 fb.Suite.t_nnz

let prop_pack_roundtrip =
  Helpers.qcheck_case ~count:30 "pack/unpack roundtrip on random matrices"
    QCheck.(pair (0 -- 1000) (0 -- 5))
    (fun (seed, fmt_idx) ->
      let _, fmt = List.nth all_formats_2d fmt_idx in
      let prng = Prng.create seed in
      let nnz = Prng.int prng 20 in
      let coo = Gen.random_coo prng ~dims:[| 6; 8 |] ~nnz in
      let t = T.pack coo fmt in
      T.validate t = Ok () && D.equal ~eps:0. (Coo.to_dense coo) (T.to_dense t))

let prop_get_matches_dense =
  Helpers.qcheck_case ~count:30 "random access agrees with dense"
    QCheck.(0 -- 1000)
    (fun seed ->
      let prng = Prng.create seed in
      let t = Gen.random prng ~dims:[| 5; 5 |] ~nnz:(Prng.int prng 12) F.dcsr in
      let d = T.to_dense t in
      let ok = ref true in
      D.iteri (fun c v -> if T.get t (Array.copy c) <> v then ok := false) d;
      !ok)

let () =
  Alcotest.run "tensor"
    [
      ( "dense",
        [
          Alcotest.test_case "get/set/add_at" `Quick test_dense_get_set;
          Alcotest.test_case "row-major layout" `Quick test_dense_row_major;
          Alcotest.test_case "bounds" `Quick test_dense_bounds;
          Alcotest.test_case "order-0 scalar" `Quick test_dense_scalar;
          Alcotest.test_case "map2" `Quick test_dense_map2;
        ] );
      ( "format",
        [
          Alcotest.test_case "accessors" `Quick test_format_accessors;
          Alcotest.test_case "invalid formats" `Quick test_format_invalid;
        ] );
      ( "coo",
        [
          Alcotest.test_case "duplicates summed" `Quick test_coo_duplicates_sum;
          Alcotest.test_case "permuted sort" `Quick test_coo_permuted_sort;
          Alcotest.test_case "bounds" `Quick test_coo_bounds;
        ] );
      ( "pack",
        [
          Alcotest.test_case "roundtrip across formats" `Quick test_pack_roundtrip_formats;
          Alcotest.test_case "random access" `Quick test_pack_get;
          Alcotest.test_case "empty tensor" `Quick test_pack_empty;
          Alcotest.test_case "3d csf" `Quick test_pack_csf_3d;
          Alcotest.test_case "csr arrays" `Quick test_csr_arrays;
          Alcotest.test_case "of_csr validation" `Quick test_of_csr_validates;
          Alcotest.test_case "repack" `Quick test_repack;
          Alcotest.test_case "logical equality" `Quick test_equal;
          prop_pack_roundtrip;
          prop_get_matches_dense;
        ] );
      ( "generators",
        [
          Alcotest.test_case "exact nnz" `Quick test_gen_exact_nnz;
          Alcotest.test_case "density target" `Quick test_gen_density;
          Alcotest.test_case "overflowing dims" `Quick test_gen_overflow_dims;
          Alcotest.test_case "table I entries" `Quick test_suite_matrices;
          Alcotest.test_case "table I generation" `Quick test_suite_generate;
          Alcotest.test_case "frostt stand-ins" `Quick test_suite_tensor_standins;
        ] );
    ]
