(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure,
   on small fixed inputs, with OLS estimation of per-run time. These give
   statistically sampled timings for the individual kernels; the figure
   harnesses (fig11/fig12/fig13) run the full-scale sweeps. *)

open Bechamel
open Toolkit
open Taco
module K = Taco_kernels

let get = Harness.get

let make_spgemm_test () =
  let kern, b, c = Harness.spgemm_kernel ~sorted:true in
  let bt = Inputs.uniform_matrix ~seed:1 ~rows:800 ~cols:800 ~density:5e-3 in
  let ct = Inputs.uniform_matrix ~seed:2 ~rows:800 ~cols:800 ~density:5e-3 in
  Test.make ~name:"fig11/spgemm_workspace"
    (Staged.stage (fun () ->
         ignore (Kernel.run_assemble kern ~inputs:[ (b, bt); (c, ct) ] ~dims:[| 800; 800 |])))

let make_spgemm_eigen_test () =
  let kern = Kernel.prepare K.Spgemm.eigen_like in
  let bt = Inputs.uniform_matrix ~seed:1 ~rows:800 ~cols:800 ~density:5e-3 in
  let ct = Inputs.uniform_matrix ~seed:2 ~rows:800 ~cols:800 ~density:5e-3 in
  Test.make ~name:"fig11/spgemm_eigen_like"
    (Staged.stage (fun () ->
         ignore
           (Kernel.run_assemble kern
              ~inputs:[ (K.Spgemm.b_var, bt); (K.Spgemm.c_var, ct) ]
              ~dims:[| 800; 800 |])))

let make_mttkrp_tests () =
  let taco_kernel, tb, tc, td = Harness.mttkrp_kernel ~use_workspace:false in
  let ws_kernel, _, _, _ = Harness.mttkrp_kernel ~use_workspace:true in
  let prng = Taco_support.Prng.create 3 in
  let bt = Gen.random prng ~dims:[| 200; 150; 180 |] ~nnz:40_000 (Format.csf 3) in
  let c = Inputs.dense_factor ~seed:4 ~rows:180 ~cols:16 in
  let d = Inputs.dense_factor ~seed:5 ~rows:150 ~cols:16 in
  let dims = [| 200; 16 |] in
  [
    Test.make ~name:"fig12/mttkrp_merge"
      (Staged.stage (fun () ->
           ignore
             (Kernel.run_dense taco_kernel ~inputs:[ (tb, bt); (tc, c); (td, d) ] ~dims)));
    Test.make ~name:"fig12/mttkrp_workspace"
      (Staged.stage (fun () ->
           ignore (Kernel.run_dense ws_kernel ~inputs:[ (tb, bt); (tc, c); (td, d) ] ~dims)));
  ]

let make_addition_tests () =
  let ops = Inputs.addition_operands ~seed:6 ~n:5 ~dim:1000 in
  let op_vars = Harness.addition_vars 5 in
  let bindings = List.combine op_vars ops in
  let fused_mode = Lower.Assemble { emit_values = true; sorted = true } in
  let merge =
    Kernel.prepare (get (Lower.lower ~mode:fused_mode (Harness.addition_merge_stmt op_vars)))
  in
  let ws =
    Kernel.prepare
      (get (Lower.lower ~mode:fused_mode (Harness.addition_workspace_stmt op_vars)))
  in
  [
    Test.make ~name:"fig13/add5_merge"
      (Staged.stage (fun () ->
           ignore (Kernel.run_assemble merge ~inputs:bindings ~dims:[| 1000; 1000 |])));
    Test.make ~name:"fig13/add5_workspace"
      (Staged.stage (fun () ->
           ignore (Kernel.run_assemble ws ~inputs:bindings ~dims:[| 1000; 1000 |])));
  ]

let run () =
  Harness.header "Bechamel micro-benchmarks (small fixed inputs)";
  let tests =
    Test.make_grouped ~name:"taco-workspaces" ~fmt:"%s %s"
      ([ make_spgemm_test (); make_spgemm_eigen_test () ]
      @ make_mttkrp_tests () @ make_addition_tests ())
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%12.3f ms/run" (t /. 1e6)
        | Some [] | None -> "(no estimate)"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "r²=%.4f" r
        | None -> ""
      in
      Printf.printf "%-45s %s %s\n" name est r2)
    (List.sort compare rows)
