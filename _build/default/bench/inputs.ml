(* Benchmark inputs: scaled Table I stand-ins and synthetic operands. *)

open Taco
module Prng = Taco_support.Prng

(* The eleven SuiteSparse stand-ins, scaled (dims / scale, nnz / scale²,
   density preserved). *)
let matrices ~seed ~scale =
  List.map
    (fun e -> (Suite.scaled_matrix_entry ~scale e, Suite.generate_matrix ~seed ~scale e))
    Suite.matrices

let uniform_matrix ~seed ~rows ~cols ~density =
  let prng = Prng.create seed in
  Gen.random_density prng ~dims:[| rows; cols |] ~density Format.csr

(* FROSTT stand-ins, further scaled for the bench budget:
   dims / scale, nnz / scale². *)
let scaled_tensor_entry ~scale (e : Suite.tensor_entry) =
  if scale <= 1 then e
  else
    {
      e with
      Suite.t_dims = Array.map (fun d -> max 16 (d / scale)) e.Suite.t_dims;
      t_nnz = max 256 (e.Suite.t_nnz / (scale * scale));
    }

let tensors ~seed ~scale =
  List.map
    (fun e ->
      let e = scaled_tensor_entry ~scale e in
      (e, Suite.generate_tensor ~seed e))
    Suite.tensor_standins

let dense_factor ~seed ~rows ~cols =
  let prng = Prng.create seed in
  Tensor.of_dense (Gen.random_dense prng [| rows; cols |]) Format.dense_matrix

let sparse_factor ~seed ~rows ~cols ~density =
  let prng = Prng.create seed in
  Gen.random_density prng ~dims:[| rows; cols |] ~density Format.csr

(* Fig. 13 operands: random matrices with target sparsities drawn
   uniformly from [1e-4, 0.01]. *)
let addition_operands ~seed ~n ~dim =
  let prng = Prng.create seed in
  List.init n (fun _ ->
      let density = 1e-4 +. (Prng.float prng *. (0.01 -. 1e-4)) in
      Gen.random_density prng ~dims:[| dim; dim |] ~density Format.csr)
