(* Fig. 11: sparse matrix multiplication against the library baselines.

   Each Table I matrix is multiplied by a uniform synthetic operand of
   density 4e-4 and 1e-4. Left plot: sorted algorithms (generated
   workspace kernel vs the Eigen-like baseline, sorting time included).
   Right plot: unsorted algorithms (generated workspace kernel vs the
   MKL-like two-pass baseline). Reported numbers are runtimes normalized
   to the workspace kernel, as in the paper. *)

open Taco
module K = Taco_kernels

let run ~seed ~scale ~reps =
  Harness.header "Fig. 11: SpGEMM vs library baselines";
  Printf.printf "(Table I stand-ins at scale 1/%d; operand densities 4e-4 and 1e-4;\n" scale;
  Printf.printf " times are medians of %d runs, normalized to the workspace kernel)\n\n" reps;
  let ws_sorted, bs, cs = Harness.spgemm_kernel ~sorted:true in
  let ws_unsorted, _, _ = Harness.spgemm_kernel ~sorted:false in
  let eigen = Kernel.prepare K.Spgemm.eigen_like in
  let mkl = Kernel.prepare K.Spgemm.mkl_like in
  Harness.row "%-3s %-11s %8s | %10s %10s %7s | %10s %10s %7s" "#" "matrix" "nnz"
    "ws-sort(s)" "eigen(s)" "ratio" "ws-uns(s)" "mkl(s)" "ratio";
  let ratios_eigen = ref [] and ratios_mkl = ref [] in
  List.iter
    (fun ((entry : Suite.matrix_entry), bt) ->
      List.iter
        (fun density ->
          let ct =
            Inputs.uniform_matrix ~seed:(seed + entry.Suite.id) ~rows:entry.Suite.cols
              ~cols:entry.Suite.cols ~density
          in
          let dims = [| entry.Suite.rows; entry.Suite.cols |] in
          let generated_inputs = [ (bs, bt); (cs, ct) ] in
          let baseline_inputs = [ (K.Spgemm.b_var, bt); (K.Spgemm.c_var, ct) ] in
          let t_ws_sorted =
            Harness.time_median ~reps (fun () ->
                ignore (Kernel.run_assemble ws_sorted ~inputs:generated_inputs ~dims))
          in
          let t_eigen =
            Harness.time_median ~reps (fun () ->
                ignore (Kernel.run_assemble eigen ~inputs:baseline_inputs ~dims))
          in
          let t_ws_unsorted =
            Harness.time_median ~reps (fun () ->
                ignore (Kernel.run_assemble ws_unsorted ~inputs:generated_inputs ~dims))
          in
          let t_mkl =
            Harness.time_median ~reps (fun () ->
                ignore (Kernel.run_assemble mkl ~inputs:baseline_inputs ~dims))
          in
          ratios_eigen := (t_eigen /. t_ws_sorted) :: !ratios_eigen;
          ratios_mkl := (t_mkl /. t_ws_unsorted) :: !ratios_mkl;
          Harness.row "%-3d %-11s %8d | %10.3f %10.3f %6.2fx | %10.3f %10.3f %6.2fx"
            entry.Suite.id entry.Suite.name
            (Tensor.stored bt) t_ws_sorted t_eigen (t_eigen /. t_ws_sorted) t_ws_unsorted
            t_mkl (t_mkl /. t_ws_unsorted))
        [ 4e-4; 1e-4 ])
    (Inputs.matrices ~seed ~scale);
  Printf.printf
    "\nsummary: eigen-like / workspace (sorted) geomean = %.2fx  (paper: 4x and 3.6x)\n"
    (Harness.geomean !ratios_eigen);
  Printf.printf
    "         mkl-like / workspace (unsorted) geomean = %.2fx  (paper: 1.28x and 1.16x)\n"
    (Harness.geomean !ratios_mkl)
