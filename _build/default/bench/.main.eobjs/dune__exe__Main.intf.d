bench/main.mli:
