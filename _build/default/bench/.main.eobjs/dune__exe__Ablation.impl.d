bench/ablation.ml: Cin Float Format Gen Harness Index_notation Inputs Kernel List Lower Printf Schedule Suite Taco Taco_kernels Taco_support Tensor
