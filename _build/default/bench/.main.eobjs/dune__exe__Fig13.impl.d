bench/fig13.ml: Format Harness Inputs Kernel List Lower Printf Taco Taco_kernels Taco_support Tensor
