bench/main.ml: Ablation Arg Cmd Cmdliner Fig11 Fig12 Fig13 Micro Table1 Term
