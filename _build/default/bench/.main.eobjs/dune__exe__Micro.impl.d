bench/micro.ml: Analyze Bechamel Benchmark Format Gen Harness Hashtbl Inputs Instance Kernel List Lower Measure Printf Staged Taco Taco_kernels Taco_support Test Time Toolkit
