bench/harness.ml: Cin Format Index_notation Kernel List Lower Printf Schedule Taco Taco_support
