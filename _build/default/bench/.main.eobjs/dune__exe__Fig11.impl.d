bench/fig11.ml: Harness Inputs Kernel List Printf Suite Taco Taco_kernels Tensor
