bench/inputs.ml: Array Format Gen List Suite Taco Taco_support Tensor
