bench/fig12.ml: Array Harness Inputs Kernel List Printf String Suite Taco Taco_exec Taco_kernels Tensor
