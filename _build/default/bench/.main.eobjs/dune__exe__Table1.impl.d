bench/table1.ml: Array Harness Inputs List Printf String Suite Taco Tensor
