(* Table I: the benchmark input inventory — published sizes and the
   synthetic stand-ins actually generated at the chosen scale. *)

open Taco

let run ~seed ~scale ~tensor_scale =
  Harness.header "Table I: test matrices and tensors (synthetic stand-ins)";
  Printf.printf "(published sizes on the left; generated stand-ins at scale 1/%d on the right)\n\n" scale;
  Harness.row "%-3s %-12s %-18s %10s %9s | %10s %10s %9s" "#" "name" "domain"
    "nnz" "density" "gen rows" "gen nnz" "density";
  List.iter
    (fun (e : Suite.matrix_entry) ->
      let scaled = Suite.scaled_matrix_entry ~scale e in
      let t = Suite.generate_matrix ~seed ~scale e in
      Harness.row "%-3d %-12s %-18s %10d %9.0e | %10d %10d %9.0e" e.Suite.id e.Suite.name
        e.Suite.domain e.Suite.nnz (Suite.density e) scaled.Suite.rows (Tensor.stored t)
        (float_of_int (Tensor.stored t)
        /. (float_of_int scaled.Suite.rows *. float_of_int scaled.Suite.cols)))
    Suite.matrices;
  print_newline ();
  Harness.row "%-12s %-18s %12s | %-18s %10s" "tensor" "domain" "pub. nnz" "gen dims" "gen nnz";
  List.iter
    (fun ((published : Suite.tensor_entry), (e, t)) ->
      Harness.row "%-12s %-18s %12d | %-18s %10d" e.Suite.t_name e.Suite.t_domain
        published.Suite.t_nnz
        (String.concat "x" (Array.to_list (Array.map string_of_int e.Suite.t_dims)))
        (Tensor.stored t))
    (List.combine Suite.tensors (Inputs.tensors ~seed ~scale:tensor_scale))
