(* Ablations of the design choices the paper discusses:

   1. Dense vs hash-map workspace for SpGEMM (§III notes hash maps also
      give O(1) access without storing zeros; Patwary et al., cited by
      the paper, report they underperform — measured here).
   2. Result reuse (sequence statement) vs a fresh nested workspace for
      sparse addition (§V-B presents both forms).
   3. Sorted vs unsorted result assembly for SpGEMM (the two variants of
      Fig. 11). *)

open Taco
module K = Taco_kernels

let run ~seed ~scale ~reps =
  Harness.header "Ablation 1: dense vs hash-map workspace (SpGEMM)";
  let ws_kernel, b, c = Harness.spgemm_kernel ~sorted:true in
  Harness.row "%-12s %10s | %10s %10s %7s" "matrix" "nnz" "dense(s)" "hash(s)" "ratio";
  let ratios = ref [] in
  List.iter
    (fun ((entry : Suite.matrix_entry), bt) ->
      let ct =
        Inputs.uniform_matrix ~seed:(seed + entry.Suite.id) ~rows:entry.Suite.cols
          ~cols:entry.Suite.cols ~density:4e-4
      in
      (* Hash capacity: power of two comfortably above the densest row. *)
      let cap = max 1024 (1 lsl (int_of_float (Float.log2 (float_of_int entry.Suite.cols)) + 1)) in
      let hash = Kernel.prepare (K.Spgemm.hash_workspace ~capacity:cap) in
      let dims = [| entry.Suite.rows; entry.Suite.cols |] in
      let t_dense =
        Harness.time_median ~reps (fun () ->
            ignore (Kernel.run_assemble ws_kernel ~inputs:[ (b, bt); (c, ct) ] ~dims))
      in
      let t_hash =
        Harness.time_median ~reps (fun () ->
            ignore
              (Kernel.run_assemble hash
                 ~inputs:[ (K.Spgemm.b_var, bt); (K.Spgemm.c_var, ct) ]
                 ~dims))
      in
      ratios := (t_hash /. t_dense) :: !ratios;
      Harness.row "%-12s %10d | %10.3f %10.3f %6.2fx" entry.Suite.name (Tensor.stored bt)
        t_dense t_hash (t_hash /. t_dense))
    (Inputs.matrices ~seed ~scale);
  Printf.printf "\nhash / dense workspace geomean = %.2fx (Patwary et al.: hash underperforms)\n"
    (Harness.geomean !ratios);

  Harness.header "Ablation 2: result reuse vs fresh nested workspace (sparse addition)";
  (* A = B + C with (a) result reuse: ∀j w=B ; ∀j w+=C, and (b) a fresh
     workspace for the addend: (∀j w = v + C) where (∀j v = B). *)
  let a = tensor "A" Format.csr in
  let bv = tensor "B" Format.csr and cv = tensor "C" Format.csr in
  let vi = ivar "i" and vj = ivar "j" in
  let stmt =
    Index_notation.assign a [ vi; vj ]
      (Index_notation.Add (Index_notation.access bv [ vi; vj ], Index_notation.access cv [ vi; vj ]))
  in
  let sched = Harness.get (Schedule.of_index_notation stmt) in
  let w = workspace "w" Format.dense_vector in
  let whole =
    Cin.Add (Cin.Access (Cin.access bv [ vi; vj ]), Cin.Access (Cin.access cv [ vi; vj ]))
  in
  let first = Harness.get (Schedule.precompute_simple ~expr:whole ~over:[ vj ] ~workspace:w sched) in
  let bij = Cin.Access (Cin.access bv [ vi; vj ]) in
  let reuse = Harness.get (Schedule.precompute_simple ~expr:bij ~over:[ vj ] ~workspace:w first) in
  let v = workspace "v" Format.dense_vector in
  let nested = Harness.get (Schedule.precompute_simple ~expr:bij ~over:[ vj ] ~workspace:v first) in
  Printf.printf "reuse:  %s\n" (Cin.to_string (Schedule.stmt reuse));
  Printf.printf "nested: %s\n\n" (Cin.to_string (Schedule.stmt nested));
  let fused = Lower.Assemble { emit_values = true; sorted = true } in
  let k_reuse = Kernel.prepare (Harness.get (Lower.lower ~mode:fused (Schedule.stmt reuse))) in
  let k_nested = Kernel.prepare (Harness.get (Lower.lower ~mode:fused (Schedule.stmt nested))) in
  let dim = 4000 in
  let ops = Inputs.addition_operands ~seed ~n:2 ~dim in
  let bindings = List.combine [ bv; cv ] ops in
  let t_reuse =
    Harness.time_median ~reps (fun () ->
        ignore (Kernel.run_assemble k_reuse ~inputs:bindings ~dims:[| dim; dim |]))
  in
  let t_nested =
    Harness.time_median ~reps (fun () ->
        ignore (Kernel.run_assemble k_nested ~inputs:bindings ~dims:[| dim; dim |]))
  in
  Harness.row "result reuse:      %.3f s" t_reuse;
  Harness.row "nested workspaces: %.3f s (%.2fx)" t_nested (t_nested /. t_reuse);

  Harness.header "Ablation 3: sorted vs unsorted result assembly (SpGEMM)";
  let ws_unsorted, _, _ = Harness.spgemm_kernel ~sorted:false in
  Harness.row "%-12s | %10s %10s %8s" "matrix" "sorted(s)" "unsort(s)" "overhead";
  List.iter
    (fun ((entry : Suite.matrix_entry), bt) ->
      let ct =
        Inputs.uniform_matrix ~seed:(seed + entry.Suite.id) ~rows:entry.Suite.cols
          ~cols:entry.Suite.cols ~density:4e-4
      in
      let dims = [| entry.Suite.rows; entry.Suite.cols |] in
      let t_sorted =
        Harness.time_median ~reps (fun () ->
            Kernel.run_assemble_raw ws_kernel ~inputs:[ (b, bt); (c, ct) ] ~dims)
      in
      let t_unsorted =
        Harness.time_median ~reps (fun () ->
            Kernel.run_assemble_raw ws_unsorted ~inputs:[ (b, bt); (c, ct) ] ~dims)
      in
      Harness.row "%-12s | %10.3f %10.3f %7.1f%%" entry.Suite.name t_sorted t_unsorted
        (Harness.pct t_sorted t_unsorted))
    (List.filteri (fun q _ -> q < 4) (Inputs.matrices ~seed ~scale))

let tiling ~seed ~reps =
  Harness.header "Ablation 4: strip-mining the dense j loop (SpMM, dense operand)";
  (* A(i,j) = Σ_k B(i,k) · Cd(k,j): sparse B, dense C and A. *)
  let a = tensor "A" Format.dense_matrix in
  let bv = tensor "B" Format.csr in
  let cd = tensor "Cd" Format.dense_matrix in
  let vi = ivar "i" and vj = ivar "j" and vk = ivar "k" in
  let stmt =
    Index_notation.assign a [ vi; vj ]
      (Index_notation.sum vk
         (Index_notation.Mul (Index_notation.access bv [ vi; vk ], Index_notation.access cd [ vk; vj ])))
  in
  let sched = Harness.get (Schedule.of_index_notation stmt) in
  let sched = Harness.get (Schedule.reorder vk vj sched) in
  let bt = Inputs.uniform_matrix ~seed ~rows:3000 ~cols:3000 ~density:2e-3 in
  let prng = Taco_support.Prng.create (seed + 1) in
  let ct = Tensor.of_dense (Gen.random_dense prng [| 3000; 64 |]) Format.dense_matrix in
  let inputs = [ (bv, bt); (cd, ct) ] in
  List.iter
    (fun factor ->
      let splits = if factor = 0 then [] else [ (vj, factor) ] in
      let kern =
        Kernel.prepare
          (Harness.get (Lower.lower ~splits ~mode:Lower.Compute (Schedule.stmt sched)))
      in
      let t =
        Harness.time_median ~reps (fun () ->
            ignore (Kernel.run_dense kern ~inputs ~dims:[| 3000; 64 |]))
      in
      Harness.row "split %-4s: %.3f s" (if factor = 0 then "none" else string_of_int factor) t)
    [ 0; 8; 16; 32 ];
  print_endline
    "(under the closure executor, tiling adds guard overhead without cache benefit —\n\
    \ the transformation is demonstrated for completeness of the scheduling language)"

let inner_vs_gustavson ~seed ~reps =
  Harness.header "Ablation 5: inner-products vs linear-combination-of-rows matmul (§II)";
  (* Inner products coiterate every (row of B, column of C) pair and touch
     values that are nonzero in only one matrix — asymptotically slower
     than Gustavson's row combinations, as §II argues. Dense output for
     both so only the iteration strategy differs. *)
  let ad = tensor "A" Format.dense_matrix in
  let bv = tensor "B" Format.csr in
  let ccsc = tensor "C" Format.csc in
  let ccsr = tensor "C" Format.csr in
  let vi = ivar "i" and vj = ivar "j" and vk = ivar "k" in
  let stmt cv =
    Index_notation.assign ad [ vi; vj ]
      (Index_notation.sum vk
         (Index_notation.Mul (Index_notation.access bv [ vi; vk ], Index_notation.access cv [ vk; vj ])))
  in
  (* Inner products: ijk with CSC C (two-way merge per output). *)
  let inner_sched = Harness.get (Schedule.of_index_notation (stmt ccsc)) in
  let inner = Kernel.prepare (Harness.get (Lower.lower ~mode:Lower.Compute (Schedule.stmt inner_sched))) in
  (* Row combinations: ikj with CSR C. *)
  let rows_sched = Harness.get (Schedule.of_index_notation (stmt ccsr)) in
  let rows_sched = Harness.get (Schedule.reorder vk vj rows_sched) in
  let rows = Kernel.prepare (Harness.get (Lower.lower ~mode:Lower.Compute (Schedule.stmt rows_sched))) in
  Harness.row "%-6s | %12s %12s %8s" "n" "inner(s)" "rows(s)" "ratio";
  List.iter
    (fun n ->
      let bt = Inputs.uniform_matrix ~seed ~rows:n ~cols:n ~density:(4. /. float_of_int n) in
      let ct_csr = Inputs.uniform_matrix ~seed:(seed + 1) ~rows:n ~cols:n ~density:(4. /. float_of_int n) in
      let ct_csc = Tensor.repack ct_csr Format.csc in
      let dims = [| n; n |] in
      let t_inner =
        Harness.time_median ~reps (fun () ->
            ignore (Kernel.run_dense inner ~inputs:[ (bv, bt); (ccsc, ct_csc) ] ~dims))
      in
      let t_rows =
        Harness.time_median ~reps (fun () ->
            ignore (Kernel.run_dense rows ~inputs:[ (bv, bt); (ccsr, ct_csr) ] ~dims))
      in
      Harness.row "%-6d | %12.3f %12.3f %7.1fx" n t_inner t_rows (t_inner /. t_rows))
    [ 500; 1000; 2000 ];
  print_endline
    "(inner products pay a merge per output pair — O(m*n) merges regardless of nnz —\n\
    \ while row combinations scale with the flops: an order-of-magnitude gap, §II)"
