(* Fig. 12 left: MTTKRP with dense output on the FROSTT stand-ins —
   merge-based taco kernel vs the workspace kernel vs the hand-written
   SPLATT-style baseline, normalized to taco.

   Fig. 12 right: MTTKRP with sparse output and sparse matrix operands,
   relative to MTTKRP with dense output and dense operands, as operand
   density sweeps — reproducing the ~25% crossover of §VIII-D. *)

open Taco
module K = Taco_kernels

let factor_rank = 16

let left ?(domains = 1) ~seed ~scale ~reps () =
  Harness.header "Fig. 12 (left): MTTKRP, dense output";
  Printf.printf
    "(FROSTT stand-ins at extra scale 1/%d, J = %d, %d domain(s); normalized to taco)\n\n"
    scale factor_rank domains;
  let taco_kernel, tb, tc, td = Harness.mttkrp_kernel ~use_workspace:false in
  let ws_kernel, _, _, _ = Harness.mttkrp_kernel ~use_workspace:true in
  let splatt = Kernel.prepare K.Mttkrp.splatt_like in
  Harness.row "%-10s %9s | %9s %9s %9s | %8s %8s" "tensor" "nnz" "taco(s)" "ws(s)"
    "splatt(s)" "ws/taco" "spl/taco";
  List.iter
    (fun ((entry : Suite.tensor_entry), bt) ->
      let dims = entry.Suite.t_dims in
      let c = Inputs.dense_factor ~seed:(seed + 1) ~rows:dims.(2) ~cols:factor_rank in
      let d = Inputs.dense_factor ~seed:(seed + 2) ~rows:dims.(1) ~cols:factor_rank in
      let out_dims = [| dims.(0); factor_rank |] in
      let run kern split inputs =
        if domains = 1 then ignore (Kernel.run_dense kern ~inputs ~dims:out_dims)
        else ignore (Taco_exec.Parallel.run_dense kern ~inputs ~dims:out_dims ~split ~domains)
      in
      let t_taco =
        Harness.time_median ~reps (fun () ->
            run taco_kernel tb [ (tb, bt); (tc, c); (td, d) ])
      in
      let t_ws =
        Harness.time_median ~reps (fun () -> run ws_kernel tb [ (tb, bt); (tc, c); (td, d) ])
      in
      let t_splatt =
        Harness.time_median ~reps (fun () ->
            run splatt K.Mttkrp.b_var
              [ (K.Mttkrp.b_var, bt); (K.Mttkrp.c_var, c); (K.Mttkrp.d_var, d) ])
      in
      Harness.row "%-10s %9d | %9.3f %9.3f %9.3f | %8.2f %8.2f" entry.Suite.t_name
        (Tensor.stored bt) t_taco t_ws t_splatt (t_ws /. t_taco) (t_splatt /. t_taco))
    (Inputs.tensors ~seed ~scale);
  print_endline
    "\n(paper: workspace beats taco by 12-35% on the large NELL tensors and loses on";
  print_endline " the small Facebook tensor; SPLATT within ~5% of the workspace kernel)"

let densities = [ 1.0; 0.25; 0.02; 0.01; 2.5e-3; 1e-4 ]

let right ~seed ~scale ~reps =
  Harness.header "Fig. 12 (right): MTTKRP sparse output / dense output";
  Printf.printf
    "(relative compute time, sparse-operand sparse-output vs dense MTTKRP, J = %d)\n\n"
    factor_rank;
  let dense_kernel, tb, tc, td = Harness.mttkrp_kernel ~use_workspace:true in
  let sparse_kernel, sb, sc, sd = Harness.mttkrp_sparse_kernel () in
  Harness.row "%-10s | %s" "tensor"
    (String.concat "  " (List.map (fun d -> Printf.sprintf "%8.0e" d) densities));
  List.iter
    (fun ((entry : Suite.tensor_entry), bt) ->
      let dims = entry.Suite.t_dims in
      let out_dims = [| dims.(0); factor_rank |] in
      let cd = Inputs.dense_factor ~seed:(seed + 1) ~rows:dims.(2) ~cols:factor_rank in
      let dd = Inputs.dense_factor ~seed:(seed + 2) ~rows:dims.(1) ~cols:factor_rank in
      let t_dense =
        Harness.time_median ~reps (fun () ->
            ignore
              (Kernel.run_dense dense_kernel ~inputs:[ (tb, bt); (tc, cd); (td, dd) ] ~dims:out_dims))
      in
      let rels =
        List.map
          (fun density ->
            let c =
              Inputs.sparse_factor ~seed:(seed + 3) ~rows:dims.(2) ~cols:factor_rank ~density
            in
            let d =
              Inputs.sparse_factor ~seed:(seed + 4) ~rows:dims.(1) ~cols:factor_rank ~density
            in
            let t_sparse =
              Harness.time_median ~reps (fun () ->
                  ignore
                    (Kernel.run_assemble sparse_kernel
                       ~inputs:[ (sb, bt); (sc, c); (sd, d) ]
                       ~dims:out_dims))
            in
            t_sparse /. t_dense)
          densities
      in
      Harness.row "%-10s | %s" entry.Suite.t_name
        (String.concat "  " (List.map (fun r -> Printf.sprintf "%8.2f" r) rels));
      (* Report the crossover density (first density where sparse wins). *)
      (match List.find_opt (fun (_, r) -> r < 1.) (List.combine densities rels) with
      | Some (d, _) -> Printf.printf "  -> sparse wins from density %.0e downward\n" d
      | None -> Printf.printf "  -> sparse never wins at these densities\n"))
    (Inputs.tensors ~seed ~scale);
  print_endline "\n(paper: crossover around 25% density; 4.5-11x speedups at density 1e-4)"
