(* Regenerates the C code of every listing in the paper and prints it,
   labeled by figure. Useful for eyeballing fidelity against the paper.

   Run with: dune exec examples/show_kernels.exe *)

open Taco
module I = Index_notation

let get = function Ok x -> x | Error e -> failwith e

let vi = ivar "i" and vj = ivar "j" and vk = ivar "k" and vl = ivar "l"

let section title cin info =
  Printf.printf "// %s\n// %s\n%s\n" title cin (Kernel.c_source (Kernel.prepare info));
  print_endline "// ------------------------------------------------------------------"

let compute = Lower.Compute

let fused = Lower.Assemble { emit_values = true; sorted = true }

let assembly_only = Lower.Assemble { emit_values = false; sorted = true }

let () =
  let a_dense = tensor "A" Format.dense_matrix in
  let a_csr = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let w = workspace "w" Format.dense_vector in
  let mul = Cin.Mul (Cin.Access (Cin.access b [ vi; vk ]), Cin.Access (Cin.access c [ vk; vj ])) in

  (* Fig 1c: matmul with dense result. *)
  let s = I.assign a_dense [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  let sched = get (Schedule.of_index_notation s) in
  let sched = get (Schedule.reorder vk vj sched) in
  let info = get (Lower.lower ~name:"fig1c_matmul_dense" ~mode:compute (Schedule.stmt sched)) in
  section "Fig. 1c: A(i,j) = sum(k, B(i,k)*C(k,j)), dense A"
    (Cin.to_string (Schedule.stmt sched)) info;

  (* Fig 1d / Fig 8: sparse result with a row workspace. *)
  let s = I.assign a_csr [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  let sched = get (Schedule.of_index_notation s) in
  let sched = get (Schedule.reorder vk vj sched) in
  let sched = get (Schedule.precompute_simple ~expr:mul ~over:[ vj ] ~workspace:w sched) in
  let info = get (Lower.lower ~name:"fig1d_matmul_sparse_compute" ~mode:compute (Schedule.stmt sched)) in
  section "Fig. 1d: sparse A, compute kernel (pre-assembled index)"
    (Cin.to_string (Schedule.stmt sched)) info;
  let info = get (Lower.lower ~name:"fig8_matmul_assembly" ~mode:assembly_only (Schedule.stmt sched)) in
  section "Fig. 8: sparse A, assembly kernel (rowlist + guard + sort)"
    (Cin.to_string (Schedule.stmt sched)) info;

  (* Fig 4: inner products of rows, before and after. *)
  let av = tensor "a" Format.dense_vector in
  let s = I.assign av [ vi ] (I.sum vj (I.Mul (I.access b [ vi; vj ], I.access c [ vi; vj ]))) in
  let sched = get (Schedule.of_index_notation s) in
  let info = get (Lower.lower ~name:"fig4a_inner_products" ~mode:compute (Schedule.stmt sched)) in
  section "Fig. 4a: a(i) = sum(j, B(i,j)*C(i,j)), merge loop"
    (Cin.to_string (Schedule.stmt sched)) info;
  let bij = Cin.Access (Cin.access b [ vi; vj ]) in
  let sched_w = get (Schedule.precompute_simple ~expr:bij ~over:[ vj ] ~workspace:w sched) in
  let info = get (Lower.lower ~name:"fig4b_inner_products_ws" ~mode:compute (Schedule.stmt sched_w)) in
  section "Fig. 4b: after precomputing B into a workspace"
    (Cin.to_string (Schedule.stmt sched_w)) info;

  (* Fig 5: sparse addition, merge and workspace versions. *)
  let s = I.assign a_csr [ vi; vj ] (I.Add (I.access b [ vi; vj ], I.access c [ vi; vj ])) in
  let sched = get (Schedule.of_index_notation s) in
  let info = get (Lower.lower ~name:"fig5a_add_merge" ~mode:compute (Schedule.stmt sched)) in
  section "Fig. 5a: A(i,j) = B(i,j) + C(i,j), merge loops"
    (Cin.to_string (Schedule.stmt sched)) info;
  let whole = Cin.Add (Cin.Access (Cin.access b [ vi; vj ]), Cin.Access (Cin.access c [ vi; vj ])) in
  let sched_w = get (Schedule.precompute_simple ~expr:whole ~over:[ vj ] ~workspace:w sched) in
  let sched_w = get (Schedule.precompute_simple ~expr:bij ~over:[ vj ] ~workspace:w sched_w) in
  let info = get (Lower.lower ~name:"fig5b_add_workspace" ~mode:compute (Schedule.stmt sched_w)) in
  section "Fig. 5b: workspace version with result reuse"
    (Cin.to_string (Schedule.stmt sched_w)) info;

  (* Fig 7: sparse tensor-vector multiplication. *)
  let b3 = tensor "B" (Format.csf 3) in
  let cv = tensor "c" Format.sparse_vector in
  let s = I.assign a_dense [ vi; vj ] (I.sum vk (I.Mul (I.access b3 [ vi; vj; vk ], I.access cv [ vk ]))) in
  let sched = get (Schedule.of_index_notation s) in
  let info = get (Lower.lower ~name:"fig7_tensor_vector" ~mode:compute (Schedule.stmt sched)) in
  section "Fig. 7: A(i,j) = sum(k, B(i,j,k)*c(k)), CSF B, sparse c"
    (Cin.to_string (Schedule.stmt sched)) info;

  (* Fig 9: MTTKRP with dense matrices, workspace transform. *)
  let cd = tensor "C" Format.dense_matrix in
  let dd = tensor "D" Format.dense_matrix in
  let s =
    I.assign a_dense [ vi; vj ]
      (I.sum vk (I.sum vl (I.Mul (I.Mul (I.access b3 [ vi; vk; vl ], I.access cd [ vl; vj ]), I.access dd [ vk; vj ]))))
  in
  let sched = get (Schedule.of_index_notation s) in
  let sched = get (Schedule.reorder vj vk sched) in
  let sched = get (Schedule.reorder vj vl sched) in
  let bc = Cin.Mul (Cin.Access (Cin.access b3 [ vi; vk; vl ]), Cin.Access (Cin.access cd [ vl; vj ])) in
  let sched_w = get (Schedule.precompute_simple ~expr:bc ~over:[ vj ] ~workspace:w sched) in
  let info = get (Lower.lower ~name:"fig9_mttkrp_workspace" ~mode:compute (Schedule.stmt sched_w)) in
  section "Fig. 9: MTTKRP, B*C hoisted into a workspace"
    (Cin.to_string (Schedule.stmt sched_w)) info;

  (* Fig 10: MTTKRP with sparse matrices and sparse output. *)
  let cs = tensor "C" Format.csr in
  let ds = tensor "D" Format.csr in
  let s =
    I.assign a_csr [ vi; vj ]
      (I.sum vk (I.sum vl (I.Mul (I.Mul (I.access b3 [ vi; vk; vl ], I.access cs [ vl; vj ]), I.access ds [ vk; vj ]))))
  in
  let sched = get (Schedule.of_index_notation s) in
  let sched = get (Schedule.reorder vj vk sched) in
  let sched = get (Schedule.reorder vj vl sched) in
  let bc = Cin.Mul (Cin.Access (Cin.access b3 [ vi; vk; vl ]), Cin.Access (Cin.access cs [ vl; vj ])) in
  let sched_w = get (Schedule.precompute_simple ~expr:bc ~over:[ vj ] ~workspace:w sched) in
  let v = workspace "v" Format.dense_vector in
  let wd = Cin.Mul (Cin.Access (Cin.access w [ vj ]), Cin.Access (Cin.access ds [ vk; vj ])) in
  let sched_w = get (Schedule.precompute_simple ~expr:wd ~over:[ vj ] ~workspace:v sched_w) in
  let info = get (Lower.lower ~name:"fig10_mttkrp_sparse" ~mode:fused (Schedule.stmt sched_w)) in
  section "Fig. 10: MTTKRP, sparse matrices and sparse output (fused)"
    (Cin.to_string (Schedule.stmt sched_w)) info
