(* Canonical polyadic (CP) decomposition by alternating least squares,
   the application that motivates MTTKRP (paper §VII).

   Factorizes a synthetic order-3 tensor X of rank R into factor matrices
   A, B, C such that X(i,k,l) ≈ Σ_r A(i,r) B(k,r) C(l,r). Each ALS step
   solves normal equations whose right-hand side is an MTTKRP; we compute
   it with the compiler-generated workspace kernel from §VII and check it
   against the SPLATT-style hand-written baseline.

   Run with: dune exec examples/tensor_decomposition.exe *)

open Taco
module D = Dense

let get = function Ok x -> x | Error e -> failwith e

let rank = 6

(* ---- small dense linear algebra for the R x R normal equations ---- *)

(* C = Aᵀ A (gram matrix) for an n x r dense matrix. *)
let gram m =
  let dims = D.dims m in
  let n = dims.(0) and r = dims.(1) in
  let g = D.create [| r; r |] in
  for i = 0 to n - 1 do
    for p = 0 to r - 1 do
      let v = D.get m [| i; p |] in
      if v <> 0. then
        for q = 0 to r - 1 do
          D.add_at g [| p; q |] (v *. D.get m [| i; q |])
        done
    done
  done;
  g

let hadamard a b = D.map2 ( *. ) a b

(* Solve G Xᵀ = Mᵀ for X (row-wise): Gaussian elimination with partial
   pivoting and a ridge term for stability. *)
let solve_normal_eqs g m =
  let r = (D.dims g).(0) in
  let rows = (D.dims m).(0) in
  let a = Array.init r (fun i -> Array.init r (fun j -> D.get g [| i; j |])) in
  for i = 0 to r - 1 do
    a.(i).(i) <- a.(i).(i) +. 1e-9
  done;
  (* LU factorization in place with row pivoting. *)
  let perm = Array.init r Fun.id in
  for col = 0 to r - 1 do
    let pivot = ref col in
    for row = col + 1 to r - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    let tmp = a.(col) in
    a.(col) <- a.(!pivot);
    a.(!pivot) <- tmp;
    let tp = perm.(col) in
    perm.(col) <- perm.(!pivot);
    perm.(!pivot) <- tp;
    for row = col + 1 to r - 1 do
      let f = a.(row).(col) /. a.(col).(col) in
      a.(row).(col) <- f;
      for c2 = col + 1 to r - 1 do
        a.(row).(c2) <- a.(row).(c2) -. (f *. a.(col).(c2))
      done
    done
  done;
  let out = D.create [| rows; r |] in
  let y = Array.make r 0. in
  for row = 0 to rows - 1 do
    (* forward substitution on the permuted right-hand side *)
    for i = 0 to r - 1 do
      y.(i) <- D.get m [| row; perm.(i) |];
      for j = 0 to i - 1 do
        y.(i) <- y.(i) -. (a.(i).(j) *. y.(j))
      done
    done;
    (* back substitution *)
    for i = r - 1 downto 0 do
      for j = i + 1 to r - 1 do
        y.(i) <- y.(i) -. (a.(i).(j) *. y.(j))
      done;
      y.(i) <- y.(i) /. a.(i).(i);
      D.set out [| row; i |] y.(i)
    done
  done;
  out

let frobenius t = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0. (Tensor.vals t))

let () =
  let prng = Taco_support.Prng.create 2026 in
  let dims = [| 40; 35; 30 |] in
  (* Ground-truth low-rank tensor sampled sparsely. *)
  let truth_a = Gen.random_dense prng [| dims.(0); rank |] in
  let truth_b = Gen.random_dense prng [| dims.(1); rank |] in
  let truth_c = Gen.random_dense prng [| dims.(2); rank |] in
  (* An exactly rank-R tensor stored in CSF, so ALS can reach fit 1.
     (On real sparse data the missing entries count as zeros and the fit
     plateaus below 1; exact low rank makes convergence visible.) *)
  let coo = Coo.create dims in
  for i = 0 to dims.(0) - 1 do
    for k = 0 to dims.(1) - 1 do
      if true then
        for l = 0 to dims.(2) - 1 do
          let v = ref 0. in
          for r = 0 to rank - 1 do
            v :=
              !v
              +. (D.get truth_a [| i; r |] *. D.get truth_b [| k; r |]
                 *. D.get truth_c [| l; r |])
          done;
          Coo.push coo [| i; k; l |] !v
        done
    done
  done;
  let x = Tensor.pack coo (Format.csf 3) in
  Printf.printf "factorizing a %dx%dx%d tensor with %d stored entries, rank %d\n\n"
    dims.(0) dims.(1) dims.(2) (Tensor.stored x) rank;

  (* The §VII MTTKRP schedule: A(i,j) = Σ_{k,l} X(i,k,l) C(l,j) B(k,j),
     reordered to i,k,l,j and with B·C precomputed into a row workspace. *)
  let xa = tensor "A" Format.dense_matrix in
  let xt = tensor "X" (Format.csf 3) in
  let mc = tensor "C" Format.dense_matrix in
  let mb = tensor "B" Format.dense_matrix in
  let i = ivar "i" and j = ivar "j" and k = ivar "k" and l = ivar "l" in
  let open Index_notation in
  let stmt =
    assign xa [ i; j ]
      (sum k (sum l (Mul (Mul (access xt [ i; k; l ], access mc [ l; j ]), access mb [ k; j ]))))
  in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder j k sched) in
  let sched = get (Schedule.reorder j l sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access xt [ i; k; l ]), Cin.Access (Cin.access mc [ l; j ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ j ] ~workspace:w sched) in
  Printf.printf "MTTKRP schedule: %s\n\n" (Cin.to_string (Schedule.stmt sched));
  let mttkrp_kernel = Kernel.prepare (get (Lower.lower ~name:"mttkrp" ~mode:Lower.Compute (Schedule.stmt sched))) in

  (* Factor matrices, initialized randomly. *)
  let fa = ref (Tensor.of_dense (Gen.random_dense prng [| dims.(0); rank |]) Format.dense_matrix) in
  let fb = ref (Tensor.of_dense (Gen.random_dense prng [| dims.(1); rank |]) Format.dense_matrix) in
  let fc = ref (Tensor.of_dense (Gen.random_dense prng [| dims.(2); rank |]) Format.dense_matrix) in

  (* One MTTKRP via the generated kernel: mode decides which tensor copy
     and factor pair feed it. We reuse the same kernel by permuting the
     roles: result rows index the chosen mode. *)
  let mttkrp x_for_mode rows m_c m_b =
    Kernel.run_dense mttkrp_kernel
      ~inputs:[ (xt, x_for_mode); (mc, m_c); (mb, m_b) ]
      ~dims:[| rows; rank |]
  in
  (* Mode-permuted copies of X so the kernel always reduces modes 2,3. *)
  let pack_perm perm =
    let coo2 = Coo.create [| dims.(perm.(0)); dims.(perm.(1)); dims.(perm.(2)) |] in
    Tensor.iteri_stored
      (fun c v -> if v <> 0. then Coo.push coo2 [| c.(perm.(0)); c.(perm.(1)); c.(perm.(2)) |] v)
      x;
    Tensor.pack coo2 (Format.csf 3)
  in
  let x0 = pack_perm [| 0; 1; 2 |] in
  let x1 = pack_perm [| 1; 0; 2 |] in
  let x2 = pack_perm [| 2; 0; 1 |] in

  let norm_x = frobenius x in
  let xd = Tensor.to_dense x in
  let fit () =
    (* True objective: 1 - ||X - [[A,B,C]]||_F / ||X||_F over the whole
       tensor (ALS minimizes over all entries, zeros included; the dense
       reconstruction is small enough to evaluate exactly here). *)
    let err = ref 0. in
    let da = Tensor.to_dense !fa and db = Tensor.to_dense !fb and dc = Tensor.to_dense !fc in
    D.iteri
      (fun c v ->
        let approx = ref 0. in
        for r = 0 to rank - 1 do
          approx :=
            !approx +. (D.get da [| c.(0); r |] *. D.get db [| c.(1); r |] *. D.get dc [| c.(2); r |])
        done;
        let d = v -. !approx in
        err := !err +. (d *. d))
      xd;
    1. -. (sqrt !err /. norm_x)
  in

  Printf.printf "initial fit: %.4f\n" (fit ());
  for iter = 1 to 25 do
    (* Update A: MTTKRP(X, C, B) then solve against (CᵀC .* BᵀB). *)
    let m = mttkrp x0 dims.(0) !fc !fb in
    let g = hadamard (gram (Tensor.to_dense !fc)) (gram (Tensor.to_dense !fb)) in
    fa := Tensor.of_dense (solve_normal_eqs g (Tensor.to_dense m)) Format.dense_matrix;
    (* Update B. *)
    let m = mttkrp x1 dims.(1) !fc !fa in
    let g = hadamard (gram (Tensor.to_dense !fc)) (gram (Tensor.to_dense !fa)) in
    fb := Tensor.of_dense (solve_normal_eqs g (Tensor.to_dense m)) Format.dense_matrix;
    (* Update C. *)
    let m = mttkrp x2 dims.(2) !fb !fa in
    let g = hadamard (gram (Tensor.to_dense !fb)) (gram (Tensor.to_dense !fa)) in
    fc := Tensor.of_dense (solve_normal_eqs g (Tensor.to_dense m)) Format.dense_matrix;
    if iter mod 5 = 0 then Printf.printf "after iteration %2d: fit %.4f\n" iter (fit ())
  done;

  (* Cross-check one MTTKRP against the SPLATT-style baseline. *)
  let generated = mttkrp x0 dims.(0) !fc !fb in
  let splatt = Kernel.prepare Taco_kernels.Mttkrp.splatt_like in
  let baseline =
    Kernel.run_dense splatt
      ~inputs:
        [
          (Taco_kernels.Mttkrp.b_var, x0);
          (Taco_kernels.Mttkrp.c_var, !fc);
          (Taco_kernels.Mttkrp.d_var, !fb);
        ]
      ~dims:[| dims.(0); rank |]
  in
  if D.equal ~eps:1e-6 (Tensor.to_dense generated) (Tensor.to_dense baseline) then
    print_endline "\ngenerated MTTKRP matches the SPLATT-style baseline."
  else failwith "MTTKRP mismatch against baseline"
