examples/ops_tour.ml: Autoschedule Filename Format Gen Index_notation Io List Printf Schedule Stdlib Sys Taco Taco_ops Taco_support Tensor
