examples/show_kernels.ml: Cin Format Index_notation Kernel Lower Printf Schedule Taco
