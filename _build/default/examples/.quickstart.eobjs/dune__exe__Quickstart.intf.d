examples/quickstart.mli:
