examples/spgemm_pipeline.mli:
