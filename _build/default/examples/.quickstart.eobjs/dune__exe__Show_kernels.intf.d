examples/show_kernels.mli:
