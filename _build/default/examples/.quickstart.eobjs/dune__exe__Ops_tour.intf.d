examples/ops_tour.mli:
