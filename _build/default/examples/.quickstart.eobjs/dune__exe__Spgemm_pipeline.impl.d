examples/spgemm_pipeline.ml: Array Cin Format Gen Heuristics Index_notation Kernel List Lower Printf Schedule Suite Taco Taco_kernels Taco_support Tensor
