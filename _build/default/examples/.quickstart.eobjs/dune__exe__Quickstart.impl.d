examples/quickstart.ml: Array Cin Format Gen Index_notation Printf Schedule Stdlib Taco Taco_frontend Taco_support Tensor
