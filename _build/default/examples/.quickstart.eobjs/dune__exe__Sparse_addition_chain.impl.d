examples/sparse_addition_chain.ml: Cin Format Gen Index_notation Kernel List Lower Printf Schedule String Taco Taco_support Tensor Tensor_var
