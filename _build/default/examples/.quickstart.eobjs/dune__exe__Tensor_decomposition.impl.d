examples/tensor_decomposition.ml: Array Cin Coo Dense Float Format Fun Gen Index_notation Kernel Lower Printf Schedule Taco Taco_kernels Taco_support Tensor
