examples/sparse_addition_chain.mli:
