(* Sparse matrix multiplication, the long way around (paper §II, §VI).

   Demonstrates:
   - the taco limitation the workspace transformation removes: lowering
     the scatter form fails with an actionable error;
   - the policy heuristics of §V-C proposing the fix automatically;
   - the symbolic/numeric split: assemble the output index once, then
     compute values repeatedly into the pre-assembled structure;
   - a timing comparison against the hand-written library baselines
     (Eigen-like and MKL-like), all running in the same executor.

   Run with: dune exec examples/spgemm_pipeline.exe *)

open Taco
module Util = Taco_support.Util

let get = function Ok x -> x | Error e -> failwith e

let time_of f =
  let _, t = Util.time f in
  t

let () =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let i = ivar "i" and j = ivar "j" and k = ivar "k" in
  let open Index_notation in
  let stmt = assign a [ i; j ] (sum k (Mul (access b [ i; k ], access c [ k; j ]))) in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder k j sched) in

  (* 1. Without a workspace, the sparse result cannot be lowered. *)
  (match Lower.lower ~mode:Lower.Compute (Schedule.stmt sched) with
  | Error e -> Printf.printf "without workspace, lowering fails:\n  %s\n\n" e
  | Ok _ -> assert false);

  (* 2. The §V-C heuristics propose the workspace. *)
  let suggestions = Heuristics.suggest (Schedule.stmt sched) in
  print_endline "heuristic suggestions:";
  List.iter
    (fun s ->
      Printf.printf "  [%s] %s\n" (Heuristics.reason_to_string s.Heuristics.reason)
        s.Heuristics.description)
    suggestions;
  let transformed, applied = Heuristics.apply_all (Schedule.stmt sched) in
  Printf.printf "after applying %d suggestion(s):\n  %s\n\n" (List.length applied)
    (Cin.to_string transformed);
  let sched = Schedule.of_stmt transformed in

  (* 3. Generate inputs: a Table I stand-in times a uniform random matrix
        of density 4e-4, like §VIII-B. *)
  let entry = List.hd Suite.matrices (* bcsstk17 *) in
  let scale = 4 in
  let bt = Suite.generate_matrix ~seed:7 ~scale entry in
  let dims = Tensor.dims bt in
  let prng = Taco_support.Prng.create 11 in
  let ct = Gen.random_density prng ~dims:[| dims.(1); dims.(1) |] ~density:4e-4 Format.csr in
  Printf.printf "B = %s stand-in (scale 1/%d): %d x %d, %d nonzeros\n" entry.Suite.name
    scale dims.(0) dims.(1) (Tensor.stored bt);
  Printf.printf "C = uniform random: %d x %d, %d nonzeros\n\n" dims.(1) dims.(1)
    (Tensor.stored ct);

  (* 4. Symbolic/numeric split: assemble once, compute many times. *)
  let assemble_kernel =
    Kernel.prepare
      (get
         (Lower.lower ~name:"spgemm_assemble"
            ~mode:(Lower.Assemble { emit_values = false; sorted = true })
            (Schedule.stmt sched)))
  in
  let compute_kernel =
    Kernel.prepare
      (get (Lower.lower ~name:"spgemm_compute" ~mode:Lower.Compute (Schedule.stmt sched)))
  in
  let inputs = [ (b, bt); (c, ct) ] in
  let out_dims = [| dims.(0); dims.(1) |] in
  let structure = ref (Tensor.zero out_dims Format.csr) in
  let t_assemble = time_of (fun () -> structure := Kernel.run_assemble assemble_kernel ~inputs ~dims:out_dims) in
  let t_compute = time_of (fun () -> Kernel.run_compute compute_kernel ~inputs ~output:!structure) in
  Printf.printf "assembly (symbolic): %.3f s -> %d result nonzeros\n" t_assemble
    (Tensor.stored !structure);
  Printf.printf "compute (numeric):   %.3f s\n" t_compute;

  (* 5. Fused assembly+compute vs the library baselines. *)
  let fused =
    Kernel.prepare
      (get
         (Lower.lower ~name:"spgemm_fused"
            ~mode:(Lower.Assemble { emit_values = true; sorted = true })
            (Schedule.stmt sched)))
  in
  let result = ref (Tensor.zero out_dims Format.csr) in
  let t_fused = time_of (fun () -> result := Kernel.run_assemble fused ~inputs ~dims:out_dims) in
  let eigen = Kernel.prepare Taco_kernels.Spgemm.eigen_like in
  let eigen_inputs = [ (Taco_kernels.Spgemm.b_var, bt); (Taco_kernels.Spgemm.c_var, ct) ] in
  let t_eigen = time_of (fun () -> ignore (Kernel.run_assemble eigen ~inputs:eigen_inputs ~dims:out_dims)) in
  let mkl = Kernel.prepare Taco_kernels.Spgemm.mkl_like in
  let t_mkl = time_of (fun () -> ignore (Kernel.run_assemble mkl ~inputs:eigen_inputs ~dims:out_dims)) in
  Printf.printf "\nfused workspace kernel: %.3f s\n" t_fused;
  Printf.printf "eigen-like baseline:    %.3f s (%.2fx)\n" t_eigen (t_eigen /. t_fused);
  Printf.printf "mkl-like baseline:      %.3f s (%.2fx)\n" t_mkl (t_mkl /. t_fused);

  (* Sanity: all agree with the pure-OCaml Gustavson oracle. *)
  let oracle = Taco_kernels.Spgemm.gustavson bt ct in
  assert (Tensor.stored oracle = Tensor.stored !result);
  print_endline "\nresults agree with the Gustavson oracle."
