lib/frontend/parser.ml: Index_notation Index_var List Printf String Taco_ir Tensor_var
