lib/frontend/parser.mli: Index_notation Taco_ir Var
