lib/ops/ops.ml: Array Hashtbl Index_var List Printf Result String Taco Taco_ir Taco_tensor Tensor_var
