lib/ops/ops.mli: Taco_tensor
