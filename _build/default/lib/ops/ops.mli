(** Pre-packaged tensor algebra operations.

    Each operation builds the index notation statement, finds a schedule
    with the {!Taco.Autoschedule} policy (applying the paper's workspace
    transformation where needed), compiles, and runs — the way a
    downstream user consumes the compiler without writing schedules.
    Compiled kernels are cached per (operation, operand formats), so
    repeated calls with same-format tensors skip compilation. *)

module Tensor = Taco_tensor.Tensor
module Format = Taco_tensor.Format

(** [matmul ?out b c] = B·C. Default output format: CSR when either
    operand has a compressed level, dense otherwise. *)
val matmul : ?out:Format.t -> Tensor.t -> Tensor.t -> (Tensor.t, string) result

(** Elementwise sum; default output CSR/dense by the same rule. *)
val add : ?out:Format.t -> Tensor.t -> Tensor.t -> (Tensor.t, string) result

(** Elementwise (Hadamard) product. *)
val mul : ?out:Format.t -> Tensor.t -> Tensor.t -> (Tensor.t, string) result

(** [spmv b x] = B·x with a dense result vector. *)
val spmv : Tensor.t -> Tensor.t -> (Tensor.t, string) result

(** [scale alpha t] multiplies every value by [alpha], preserving format. *)
val scale : float -> Tensor.t -> (Tensor.t, string) result

(** [inner a b] = Σ aᵢⱼ… bᵢⱼ… (the scalar inner product of two tensors of
    the same dimensions). *)
val inner : Tensor.t -> Tensor.t -> (float, string) result

(** [mttkrp x c d] = the matricized tensor times Khatri-Rao product of
    paper §VII: [A(i,j) = Σ_{k,l} X(i,k,l)·C(l,j)·D(k,j)] with dense
    factor matrices, computed with the workspace schedule. *)
val mttkrp : Tensor.t -> Tensor.t -> Tensor.t -> (Tensor.t, string) result

(** [sddmm b c d] = sampled dense-dense matrix multiplication
    [A(i,j) = B(i,j) · Σ_k C(i,k)·D(k,j)] — the sparsity of [B] samples
    the dense product; the reduction lowers through a scalar temporary
    (§VI's concretization rule). Output has [B]'s format. *)
val sddmm : Tensor.t -> Tensor.t -> Tensor.t -> (Tensor.t, string) result

(** [transpose t] swaps the two modes of a matrix (repacking). *)
val transpose : Tensor.t -> Tensor.t
