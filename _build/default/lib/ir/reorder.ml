open Var

let uses_tensor s tv = List.exists (Tensor_var.equal tv) (Cin.tensors s)

let uses_any_written s other =
  List.exists (uses_tensor s) (Cin.tensors_written other)

(* True when the statement's leaves are plain or incrementing assignments
   (increment operator + is associative), with no sequences. *)
let rec assignment_like = function
  | Cin.Assignment _ -> true
  | Cin.Forall (_, s) -> assignment_like s
  | Cin.Where (c, p) -> assignment_like c && assignment_like p
  | Cin.Sequence _ -> false

let exchange_foralls = function
  | Cin.Forall (i, Cin.Forall (j, s)) when assignment_like s ->
      Ok (Cin.Forall (j, Cin.Forall (i, s)))
  | Cin.Forall (_, Cin.Forall (_, s)) when not (assignment_like s) ->
      Error "exchange_foralls: body contains a sequence statement"
  | Cin.Forall _ | Cin.Assignment _ | Cin.Where _ | Cin.Sequence _ ->
      Error "exchange_foralls: statement is not a forall of a forall"

let hoist_producer = function
  | Cin.Forall (j, Cin.Where (s1, s2)) ->
      if Cin.uses_var s2 j then
        Error "hoist_producer: the producer uses the forall variable"
      else Ok (Cin.Where (Cin.Forall (j, s1), s2))
  | Cin.Forall _ | Cin.Assignment _ | Cin.Where _ | Cin.Sequence _ ->
      Error "hoist_producer: statement is not ∀j (S1 where S2)"

let sink_forall = function
  | Cin.Where (Cin.Forall (j, s1), s2) ->
      if Cin.uses_var s2 j then
        Error "sink_forall: the producer uses the forall variable"
      else Ok (Cin.Forall (j, Cin.Where (s1, s2)))
  | Cin.Where _ | Cin.Assignment _ | Cin.Forall _ | Cin.Sequence _ ->
      Error "sink_forall: statement is not (∀j S1) where S2"

(* The producer must modify its tensor with a plain assignment: splitting
   the loop then reads workspace values after the j loop instead of
   immediately, which is only equivalent when each element is written
   once. *)
let rec assigns_only = function
  | Cin.Assignment { op = Cin.Assign; _ } -> true
  | Cin.Assignment { op = Cin.Accumulate; _ } -> false
  | Cin.Forall (_, s) -> assigns_only s
  | Cin.Where (c, p) -> assigns_only c && assigns_only p
  | Cin.Sequence _ -> false

let split_forall = function
  | Cin.Forall (j, Cin.Where (s1, s2)) ->
      if not (assigns_only s2) then
        Error "split_forall: the producer must use plain assignment"
      else Ok (Cin.Where (Cin.Forall (j, s1), Cin.Forall (j, s2)))
  | Cin.Forall _ | Cin.Assignment _ | Cin.Where _ | Cin.Sequence _ ->
      Error "split_forall: statement is not ∀j (S1 where S2)"

let fuse_forall = function
  | Cin.Where (Cin.Forall (j, s1), Cin.Forall (j', s2)) ->
      if not (Index_var.equal j j') then
        Error "fuse_forall: forall variables differ"
      else if not (assigns_only s2) then
        Error "fuse_forall: the producer must use plain assignment"
      else Ok (Cin.Forall (j, Cin.Where (s1, s2)))
  | Cin.Where _ | Cin.Assignment _ | Cin.Forall _ | Cin.Sequence _ ->
      Error "fuse_forall: statement is not (∀j S1) where (∀j S2)"

let where_reassoc = function
  | Cin.Where (Cin.Where (s1, s2), s3) ->
      if uses_any_written s1 s3 then
        Error "where_reassoc: S1 uses the tensor modified by S3"
      else Ok (Cin.Where (s1, Cin.Where (s2, s3)))
  | Cin.Where _ | Cin.Assignment _ | Cin.Forall _ | Cin.Sequence _ ->
      Error "where_reassoc: statement is not (S1 where S2) where S3"

let where_unassoc = function
  | Cin.Where (s1, Cin.Where (s2, s3)) ->
      if uses_any_written s1 s3 then
        Error "where_unassoc: S1 uses the tensor modified by S3"
      else Ok (Cin.Where (Cin.Where (s1, s2), s3))
  | Cin.Where _ | Cin.Assignment _ | Cin.Forall _ | Cin.Sequence _ ->
      Error "where_unassoc: statement is not S1 where (S2 where S3)"

let where_swap = function
  | Cin.Where (Cin.Where (s1, s2), s3) ->
      if uses_any_written s2 s3 then
        Error "where_swap: S2 uses the tensor modified by S3"
      else if uses_any_written s3 s2 then
        Error "where_swap: S3 uses the tensor modified by S2"
      else Ok (Cin.Where (Cin.Where (s1, s3), s2))
  | Cin.Where _ | Cin.Assignment _ | Cin.Forall _ | Cin.Sequence _ ->
      Error "where_swap: statement is not (S1 where S2) where S3"

let reorder v1 v2 stmt =
  let swap vars =
    List.map
      (fun v ->
        if Index_var.equal v v1 then v2
        else if Index_var.equal v v2 then v1
        else v)
      vars
  in
  let rec go stmt =
    let vars, body = Cin.peel_foralls stmt in
    let has v = List.exists (Index_var.equal v) vars in
    if has v1 && has v2 then
      if assignment_like body then Ok (Cin.foralls (swap vars) body)
      else Error "reorder: the loop body contains a sequence statement"
    else
      (* Search deeper: the nest may live inside a where or sequence. *)
      match body with
      | Cin.Assignment _ ->
          Error
            (Printf.sprintf "reorder: no forall nest binds both %s and %s"
               (Index_var.name v1) (Index_var.name v2))
      | Cin.Forall _ -> assert false (* peeled *)
      | Cin.Where (c, p) -> (
          match go c with
          | Ok c' -> Ok (Cin.foralls vars (Cin.Where (c', p)))
          | Error _ -> (
              match go p with
              | Ok p' -> Ok (Cin.foralls vars (Cin.Where (c, p')))
              | Error _ as e -> e))
      | Cin.Sequence (a, b) -> (
          match go a with
          | Ok a' -> Ok (Cin.foralls vars (Cin.Sequence (a', b)))
          | Error _ -> (
              match go b with
              | Ok b' -> Ok (Cin.foralls vars (Cin.Sequence (a, b')))
              | Error _ as e -> e))
  in
  go stmt
