(** Policy heuristics for invoking the workspace transformation
    (paper §V-C).

    These analyze a concrete index notation statement and propose
    [precompute] invocations. They are advisory: the paper leaves a full
    policy system as future work, to be built on the scheduling API. *)

open Var

type reason =
  | Simplify_merge
      (** More than three sparse operands merge at one loop into a sparse
          result: scatter into a dense workspace instead. *)
  | Avoid_insert
      (** An incrementing assignment scatters into a compressed result
          under a reduction loop: accumulate into a workspace. *)
  | Hoist_invariant
      (** Part of the innermost computation does not depend on an inner
          reduction loop: hoist it by precomputing a sub-product. *)

type suggestion = {
  reason : reason;
  expr : Cin.expr;  (** expression to precompute *)
  over : Index_var.t list;  (** workspace index variables (the set I) *)
  description : string;
}

val reason_to_string : reason -> string

(** Analyze the statement and return suggestions, highest value first.
    [sparse_threshold] is the merge-arity cutoff (default 3, per §V-C). *)
val suggest : ?sparse_threshold:int -> Cin.stmt -> suggestion list

(** Apply the first applicable suggestion, creating a fresh dense
    workspace, until none remain or [max_rounds] is hit. Returns the
    transformed statement and the suggestions applied. *)
val apply_all : ?max_rounds:int -> Cin.stmt -> Cin.stmt * suggestion list
