(** Tensor index notation: the input language (paper §IV).

    Index notation describes {e what} a tensor operation computes,
    independent of loop order and temporaries. It is concretized into
    {!Cin} before scheduling and lowering. *)

open Var

type expr =
  | Literal of float
  | Access of Tensor_var.t * Index_var.t list
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Sum of Index_var.t * expr  (** explicit reduction, [sum(k, e)] *)

type op = Assign | Accumulate  (** [=] and [+=] *)

type t = {
  lhs : Tensor_var.t;
  lhs_indices : Index_var.t list;
  op : op;
  rhs : expr;
}

(** {2 Construction} *)

val access : Tensor_var.t -> Index_var.t list -> expr

val assign : Tensor_var.t -> Index_var.t list -> expr -> t

val accumulate : Tensor_var.t -> Index_var.t list -> expr -> t

val sum : Index_var.t -> expr -> expr

(** {2 Analysis} *)

(** Index variables of an expression, free occurrences only (bound
    [Sum] variables excluded), in first-use order. *)
val free_vars : expr -> Index_var.t list

(** All index variables including [Sum]-bound ones, in first-use order. *)
val all_vars : expr -> Index_var.t list

(** Reduction variables of a statement: variables used on the right-hand
    side but absent from the left-hand side, plus [Sum]-bound variables,
    in first-use order. *)
val reduction_vars : t -> Index_var.t list

val tensors_of_expr : expr -> Tensor_var.t list

(** Every tensor of the statement, result first. *)
val tensors : t -> Tensor_var.t list

(** Checks well-formedness: access arities match tensor orders, the result
    tensor does not occur on the right-hand side, no shadowing or repeated
    [Sum] binders, left-hand side indices are distinct. *)
val validate : t -> (unit, string) result

(** {2 Printing} *)

val pp_expr : Format.formatter -> expr -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string
