(** Concretization: index notation → concrete index notation (paper §VI).

    Two steps:
    + insert forall statements — free index variables nested outside
      reduction variables;
    + handle reductions. By default a reduction that spans the whole
      right-hand side becomes an incrementing assignment under the
      reduction foralls (the form the paper's examples use, e.g.
      [∀ijk A(i,j) += B(i,k)*C(k,j)]). With [~scalar_temps:true], every
      [Sum] instead becomes a where statement whose producer reduces into
      a fresh scalar temporary, the literal rule of §VI. *)

(** [run ?scalar_temps stmt] fails when the statement does not validate. *)
val run : ?scalar_temps:bool -> Index_notation.t -> (Cin.stmt, string) result

(** Like {!run} but raises [Invalid_argument]. *)
val run_exn : ?scalar_temps:bool -> Index_notation.t -> Cin.stmt
