open Var
module F = Taco_tensor.Format
module L = Taco_tensor.Level

type reason = Simplify_merge | Avoid_insert | Hoist_invariant

type suggestion = {
  reason : reason;
  expr : Cin.expr;
  over : Index_var.t list;
  description : string;
}

let reason_to_string = function
  | Simplify_merge -> "simplify merges"
  | Avoid_insert -> "avoid expensive inserts"
  | Hoist_invariant -> "hoist loop-invariant code"

(* Is the access's level for index variable [v] compressed? *)
let compressed_at (a : Cin.access) v =
  match Taco_support.Util.list_index_of v a.indices with
  | None -> false
  | Some mode ->
      let fmt = Tensor_var.format a.tensor in
      L.equal (F.level fmt (F.level_of_mode fmt mode)) L.Compressed

let rec expr_accesses = function
  | Cin.Literal _ -> []
  | Cin.Access a -> [ a ]
  | Cin.Neg e -> expr_accesses e
  | Cin.Add (a, b) | Cin.Sub (a, b) | Cin.Mul (a, b) | Cin.Div (a, b) ->
      expr_accesses a @ expr_accesses b

(* Find every assignment together with its enclosing forall variables,
   outermost first. *)
let rec assignments enclosing = function
  | Cin.Assignment { lhs; op; rhs } -> [ (List.rev enclosing, lhs, op, rhs) ]
  | Cin.Forall (v, s) -> assignments (v :: enclosing) s
  | Cin.Where (c, p) -> assignments enclosing c @ assignments enclosing p
  | Cin.Sequence (a, b) -> assignments enclosing a @ assignments enclosing b

let rec flatten_mul = function
  | Cin.Mul (a, b) -> flatten_mul a @ flatten_mul b
  | (Cin.Literal _ | Cin.Access _ | Cin.Neg _ | Cin.Add _ | Cin.Sub _ | Cin.Div _) as e ->
      [ e ]

let rebuild_mul = function
  | [] -> invalid_arg "Heuristics.rebuild_mul: empty"
  | x :: rest -> List.fold_left (fun a b -> Cin.Mul (a, b)) x rest

let mem v vars = List.exists (Index_var.equal v) vars

let suggest_for_assignment ~sparse_threshold (enclosing, (lhs : Cin.access), op, rhs) =
  let suggestions = ref [] in
  let innermost =
    match List.rev enclosing with [] -> None | v :: _ -> Some v
  in
  let reduction_vars = List.filter (fun v -> not (mem v lhs.indices)) enclosing in
  (* Avoid expensive inserts: an incrementing assignment into a result
     whose innermost written mode is compressed, under a reduction loop. *)
  (match (op, reduction_vars) with
  | Cin.Accumulate, _ :: _ ->
      let scattered = List.exists (compressed_at lhs) lhs.indices in
      if scattered then begin
        (* Workspace over the result variables bound inside the first
           reduction loop (a low-dimensional slice, e.g. one row). *)
        let rec below_reduction = function
          | [] -> []
          | v :: rest ->
              if mem v reduction_vars then
                List.filter (fun w -> mem w lhs.indices) rest
              else below_reduction rest
        in
        let over = below_reduction enclosing in
        if over <> [] then
          suggestions :=
            {
              reason = Avoid_insert;
              expr = rhs;
              over;
              description =
                Printf.sprintf
                  "scatter into compressed result %s: accumulate into a dense \
                   workspace over %s instead"
                  (Tensor_var.name lhs.tensor)
                  (String.concat "," (List.map Index_var.name over));
            }
            :: !suggestions
      end
  | Cin.Accumulate, [] | Cin.Assign, _ -> ());
  (* Simplify merges: more than [sparse_threshold] operands compressed at
     the innermost variable, with a compressed result. *)
  (match innermost with
  | Some v ->
      let sparse_operands =
        List.filter (fun a -> compressed_at a v) (expr_accesses rhs)
      in
      if
        List.length sparse_operands > sparse_threshold
        && List.exists (compressed_at lhs) lhs.indices
      then
        suggestions :=
          {
            reason = Simplify_merge;
            expr = rhs;
            over = [ v ];
            description =
              Printf.sprintf
                "%d sparse operands merge at %s into a compressed result: \
                 scatter into a dense workspace"
                (List.length sparse_operands) (Index_var.name v);
          }
          :: !suggestions
  | None -> ());
  (* Hoist loop-invariant code: a proper sub-product uses an inner
     reduction variable the rest does not; precompute it to lift the rest
     out of that loop. *)
  (match (flatten_mul rhs, innermost) with
  | (_ :: _ :: _ as factors), Some inner ->
      let candidates =
        List.filter (fun v -> (not (Index_var.equal v inner)) && mem v reduction_vars) enclosing
      in
      List.iter
        (fun v ->
          let using, not_using =
            List.partition (fun f -> mem v (Cin.expr_vars f)) factors
          in
          if using <> [] && not_using <> [] then begin
            let sub = rebuild_mul using in
            let over =
              List.filter
                (fun w -> mem w (Cin.expr_vars sub) && not (mem w reduction_vars))
                enclosing
              |> List.filter (fun w ->
                     (* only variables bound inside v *)
                     let rec after = function
                       | [] -> false
                       | x :: rest ->
                           if Index_var.equal x v then mem w rest else after rest
                     in
                     after enclosing)
            in
            if over <> [] then
              suggestions :=
                {
                  reason = Hoist_invariant;
                  expr = sub;
                  over;
                  description =
                    Printf.sprintf
                      "precompute %s over %s to hoist the remaining factors \
                       out of the %s loop"
                      (Stdlib.Format.asprintf "%a" Cin.pp_expr sub)
                      (String.concat "," (List.map Index_var.name over))
                      (Index_var.name v);
                }
                :: !suggestions
          end)
        candidates
  | ([] | [ _ ]), _ | _, None -> ());
  List.rev !suggestions

let suggest ?(sparse_threshold = 3) stmt =
  List.concat_map (suggest_for_assignment ~sparse_threshold) (assignments [] stmt)

let workspace_counter = ref 0

let apply_all ?(max_rounds = 4) stmt =
  let rec go stmt applied round =
    if round >= max_rounds then (stmt, List.rev applied)
    else
      match suggest stmt with
      | [] -> (stmt, List.rev applied)
      | s :: _ -> (
          incr workspace_counter;
          let workspace =
            Tensor_var.workspace
              (Printf.sprintf "w%d" !workspace_counter)
              ~order:(List.length s.over)
              ~format:(F.dense (List.length s.over))
          in
          match Workspace.precompute stmt ~expr:s.expr ~over:s.over ~workspace with
          | Ok stmt' ->
              if Cin.equal_stmt stmt stmt' then (stmt, List.rev applied)
              else go stmt' (s :: applied) (round + 1)
          | Error _ -> (stmt, List.rev applied))
  in
  go stmt [] 0
