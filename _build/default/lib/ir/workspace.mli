(** The workspace transformation (paper §V).

    [precompute stmt ~expr ~over ~workspace] rewrites [stmt] so that the
    subexpression [expr] is computed separately into [workspace], indexed
    by the variables [over] (the set I of §V-A). The target assignment is
    split into a consumer and a producer joined by a where statement, and
    the surrounding foralls are pushed into the side(s) that use them,
    from innermost to outermost. Foralls whose variable is used on both
    sides but is not in [over] stop the push-down and remain surrounding
    the where statement (so the workspace is recomputed per iteration, as
    in the paper's examples, e.g. the per-row workspace of Fig. 1d).

    When [workspace] is the target assignment's own result tensor and
    [expr] is an addend of its right-hand side, the result-reuse rule of
    §V-B applies instead and produces a sequence statement, e.g.
    [∀i a(i) = b(i) + c(i)] into [∀i a(i) = b(i) ; ∀i a(i) += c(i)].

    After the rewrite, a consumer [A(K) += w(I)] becomes a plain
    assignment when every forall enclosing it binds a variable of [K]
    (each element of [A] is then incremented once, §V-A).

    Preconditions checked (each failure returns [Error _]):
    - [stmt] contains no sequence statements;
    - exactly one assignment's right-hand side contains [expr];
    - [expr] is the whole right-hand side, a factor (sub-product) of a
      product, or — with result reuse — an addend of a sum;
    - [workspace] has order [length over] (and, unless reusing the result,
      does not already occur in [stmt]);
    - distributing a reduction into the producer is rejected when [expr]
      is an addend (+ does not distribute over +). *)

open Var

val precompute :
  Cin.stmt ->
  expr:Cin.expr ->
  over:Index_var.t list ->
  workspace:Tensor_var.t ->
  (Cin.stmt, string) result
