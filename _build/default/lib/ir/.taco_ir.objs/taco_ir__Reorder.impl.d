lib/ir/reorder.ml: Cin Index_var List Printf Tensor_var Var
