lib/ir/concretize.ml: Cin Index_notation Index_var List Taco_tensor Tensor_var Var
