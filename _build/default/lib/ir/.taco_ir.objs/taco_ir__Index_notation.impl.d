lib/ir/index_notation.ml: Format Index_var List Printf Result String Taco_support Tensor_var Var
