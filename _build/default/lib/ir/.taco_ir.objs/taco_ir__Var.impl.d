lib/ir/var.ml: Format Printf String Taco_tensor
