lib/ir/cin.mli: Format Index_var Tensor_var Var
