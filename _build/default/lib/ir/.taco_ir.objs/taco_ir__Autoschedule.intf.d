lib/ir/autoschedule.mli: Cin Heuristics Index_var Tensor_var Var
