lib/ir/cin.ml: Buffer Format Index_var List Printf Result String Taco_support Tensor_var Var
