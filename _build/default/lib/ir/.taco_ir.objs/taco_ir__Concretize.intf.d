lib/ir/concretize.mli: Cin Index_notation
