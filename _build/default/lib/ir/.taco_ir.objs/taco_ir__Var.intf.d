lib/ir/var.mli: Format Taco_tensor
