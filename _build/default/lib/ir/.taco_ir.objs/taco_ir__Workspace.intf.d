lib/ir/workspace.mli: Cin Index_var Tensor_var Var
