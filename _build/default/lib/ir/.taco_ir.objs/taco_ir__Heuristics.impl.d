lib/ir/heuristics.ml: Cin Index_var List Printf Stdlib String Taco_support Taco_tensor Tensor_var Var Workspace
