lib/ir/heuristics.mli: Cin Index_var Var
