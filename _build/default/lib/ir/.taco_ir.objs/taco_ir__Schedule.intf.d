lib/ir/schedule.mli: Cin Format Index_notation Index_var Tensor_var Var
