lib/ir/cin_eval.mli: Cin Index_var Taco_tensor Tensor_var Var
