lib/ir/reorder.mli: Cin Index_var Var
