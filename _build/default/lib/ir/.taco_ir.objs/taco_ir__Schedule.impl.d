lib/ir/schedule.ml: Cin Concretize Index_notation Index_var List Reorder Result Tensor_var Var Workspace
