lib/ir/index_notation.mli: Format Index_var Tensor_var Var
