lib/ir/workspace.ml: Cin Index_var List Option Printf Result Tensor_var Var
