lib/ir/cin_eval.ml: Array Cin Hashtbl Index_var List Printf Taco_tensor Tensor_var Var
