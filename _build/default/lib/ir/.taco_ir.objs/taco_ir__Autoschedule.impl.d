lib/ir/autoschedule.ml: Cin Hashtbl Heuristics Index_var List Printf Queue Reorder Stdlib String Taco_tensor Tensor_var Var Workspace
