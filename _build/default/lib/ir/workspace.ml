open Var

type mode = Product | Addend of Cin.op | Reuse

type state = Pushing of mode | Done

let rec flatten_mul = function
  | Cin.Mul (a, b) -> flatten_mul a @ flatten_mul b
  | (Cin.Literal _ | Cin.Access _ | Cin.Neg _ | Cin.Add _ | Cin.Sub _ | Cin.Div _) as e ->
      [ e ]

let rec flatten_add = function
  | Cin.Add (a, b) -> flatten_add a @ flatten_add b
  | (Cin.Literal _ | Cin.Access _ | Cin.Neg _ | Cin.Mul _ | Cin.Sub _ | Cin.Div _) as e ->
      [ e ]

let rebuild rebuild_op = function
  | [] -> invalid_arg "Workspace.rebuild: empty"
  | x :: rest -> List.fold_left rebuild_op x rest

(* Remove the factors of [needles] from [haystack] (multiset, structural
   equality, first match). *)
let remove_factors haystack needles =
  let rec remove_one x = function
    | [] -> None
    | y :: rest ->
        if Cin.equal_expr x y then Some rest
        else Option.map (fun r -> y :: r) (remove_one x rest)
  in
  List.fold_left
    (fun acc x -> Option.bind acc (remove_one x))
    (Some haystack) needles

let remove_addend haystack needle =
  let rec go = function
    | [] -> None
    | y :: rest ->
        if Cin.equal_expr needle y then Some rest
        else Option.map (fun r -> y :: r) (go rest)
  in
  go haystack

let uses_any_written s other =
  List.exists
    (fun tv -> List.exists (Tensor_var.equal tv) (Cin.tensors s))
    (Cin.tensors_written other)

(* Re-associate a left-nested where spine, (S1 where S2) where S3 into
   S1 where (S2 where S3), so that producers attached before the
   transformation travel with the statements that use their tensors. *)
let rec normalize node =
  match node with
  | Cin.Where (Cin.Where (s1, s2), s3) when not (uses_any_written s1 s3) ->
      normalize (Cin.Where (s1, Cin.Where (s2, s3)))
  | Cin.Where _ | Cin.Assignment _ | Cin.Forall _ | Cin.Sequence _ -> node

let rec stmt_contains_target ~expr = function
  | Cin.Assignment { rhs; _ } -> Cin.contains_expr rhs expr
  | Cin.Forall (_, s) -> stmt_contains_target ~expr s
  | Cin.Where (c, p) ->
      stmt_contains_target ~expr c || stmt_contains_target ~expr p
  | Cin.Sequence (a, b) ->
      stmt_contains_target ~expr a || stmt_contains_target ~expr b

let rec count_targets ~expr = function
  | Cin.Assignment { rhs; _ } -> if Cin.contains_expr rhs expr then 1 else 0
  | Cin.Forall (_, s) -> count_targets ~expr s
  | Cin.Where (c, p) -> count_targets ~expr c + count_targets ~expr p
  | Cin.Sequence (a, b) -> count_targets ~expr a + count_targets ~expr b

let split ~expr ~over ~workspace (lhs : Cin.access) op rhs =
  let w_access = Cin.access workspace over in
  if Tensor_var.equal workspace lhs.tensor then begin
    (* Result reuse (§V-B): expr must be an addend of the right-hand side. *)
    match remove_addend (flatten_add rhs) expr with
    | None ->
        Error
          "precompute: result reuse requires the expression to be an addend \
           of the right-hand side"
    | Some [] -> Error "precompute: nothing remains after removing the addend"
    | Some rest ->
        let s1 = Cin.Assignment { lhs; op; rhs = expr } in
        let s2 =
          Cin.Assignment { lhs; op = Cin.Accumulate; rhs = rebuild (fun a b -> Cin.Add (a, b)) rest }
        in
        Ok (Cin.Sequence (s1, s2), Reuse)
  end
  else if Cin.equal_expr rhs expr then
    let consumer = Cin.Assignment { lhs; op; rhs = Cin.Access w_access } in
    let producer = Cin.Assignment { lhs = w_access; op; rhs = expr } in
    Ok (Cin.Where (consumer, producer), Product)
  else
    match remove_factors (flatten_mul rhs) (flatten_mul expr) with
    | Some remaining when List.length remaining < List.length (flatten_mul rhs) ->
        let rhs' = rebuild (fun a b -> Cin.Mul (a, b)) (Cin.Access w_access :: remaining) in
        let consumer = Cin.Assignment { lhs; op; rhs = rhs' } in
        let producer = Cin.Assignment { lhs = w_access; op; rhs = expr } in
        Ok (Cin.Where (consumer, producer), Product)
    | Some _ | None -> (
        match remove_addend (flatten_add rhs) expr with
        | Some rest when rest <> [] ->
            let rhs' =
              rebuild (fun a b -> Cin.Add (a, b)) (Cin.Access w_access :: rest)
            in
            let consumer = Cin.Assignment { lhs; op; rhs = rhs' } in
            let producer =
              Cin.Assignment { lhs = w_access; op = Cin.Assign; rhs = expr }
            in
            Ok (Cin.Where (consumer, producer), Addend op)
        | Some _ | None ->
            Error
              "precompute: the expression is neither the whole right-hand \
               side, a factor of a product, nor an addend of a sum")

let push j node mode ~over =
  let in_over = List.exists (Index_var.equal j) over in
  let stop () = Ok (Cin.Forall (j, node), Done) in
  match mode with
  | Reuse -> (
      match node with
      | Cin.Sequence (a, b) ->
          if Cin.uses_var a j && Cin.uses_var b j && in_over then
            Ok (Cin.Sequence (Cin.Forall (j, a), Cin.Forall (j, b)), Pushing Reuse)
          else stop ()
      | Cin.Assignment _ | Cin.Forall _ | Cin.Where _ -> stop ())
  | Product | Addend _ -> (
      match normalize node with
      | Cin.Where (c, p) -> (
          let uc = Cin.uses_var c j and up = Cin.uses_var p j in
          match (uc, up) with
          | true, true when in_over ->
              Ok (Cin.Where (Cin.Forall (j, c), Cin.Forall (j, p)), Pushing mode)
          | true, false -> Ok (Cin.Where (Cin.Forall (j, c), p), Pushing mode)
          | false, true -> (
              match mode with
              | Addend Cin.Accumulate ->
                  Error
                    (Printf.sprintf
                       "precompute: cannot move the reduction over %s into an \
                        addend producer (+ does not distribute over +); \
                        reorder first or precompute a factor"
                       (Index_var.name j))
              | Addend Cin.Assign | Product | Reuse ->
                  Ok (Cin.Where (c, Cin.Forall (j, p)), Pushing mode))
          | true, true | false, false -> stop ())
      | Cin.Assignment _ | Cin.Forall _ | Cin.Sequence _ -> stop ())

(* Convert the consumer [A(K) += w(I)·…] to a plain assignment when every
   enclosing forall binds a variable of K (each element incremented once). *)
let convert_consumer stmt ~workspace ~over =
  let reads_workspace rhs =
    Cin.contains_expr rhs (Cin.Access (Cin.access workspace over))
  in
  let rec go enclosing = function
    | Cin.Assignment { lhs; op = Cin.Accumulate; rhs }
      when (not (Tensor_var.equal lhs.tensor workspace)) && reads_workspace rhs ->
        let covered =
          List.for_all
            (fun v -> List.exists (Index_var.equal v) lhs.indices)
            enclosing
        in
        if covered then Cin.Assignment { lhs; op = Cin.Assign; rhs }
        else Cin.Assignment { lhs; op = Cin.Accumulate; rhs }
    | Cin.Assignment _ as a -> a
    | Cin.Forall (v, s) -> Cin.Forall (v, go (v :: enclosing) s)
    | Cin.Where (c, p) -> Cin.Where (go enclosing c, go enclosing p)
    | Cin.Sequence (a, b) -> Cin.Sequence (go enclosing a, go enclosing b)
  in
  go [] stmt

let precompute stmt ~expr ~over ~workspace =
  let ( let* ) r f = Result.bind r f in
  let* () =
    if Cin.contains_sequence stmt then
      Error "precompute: the statement contains a sequence statement"
    else Ok ()
  in
  let* () =
    if Tensor_var.order workspace <> List.length over then
      Error
        (Printf.sprintf
           "precompute: workspace %s has order %d but %d index variables were \
            given"
           (Tensor_var.name workspace) (Tensor_var.order workspace)
           (List.length over))
    else Ok ()
  in
  let* () =
    match count_targets ~expr stmt with
    | 0 -> Error "precompute: no assignment's right-hand side contains the expression"
    | 1 -> Ok ()
    | n -> Error (Printf.sprintf "precompute: the expression occurs in %d assignments" n)
  in
  let reuse_possible tv = Tensor_var.equal tv workspace in
  let* () =
    let occurs = List.exists (Tensor_var.equal workspace) (Cin.tensors stmt) in
    let is_reuse =
      (* Reuse iff the workspace is the target assignment's result. *)
      let rec target_lhs = function
        | Cin.Assignment { lhs; rhs; _ } ->
            if Cin.contains_expr rhs expr then Some lhs.tensor else None
        | Cin.Forall (_, s) -> target_lhs s
        | Cin.Where (c, p) -> (
            match target_lhs c with Some t -> Some t | None -> target_lhs p)
        | Cin.Sequence (a, b) -> (
            match target_lhs a with Some t -> Some t | None -> target_lhs b)
      in
      match target_lhs stmt with Some t -> reuse_possible t | None -> false
    in
    if occurs && not is_reuse then
      Error
        (Printf.sprintf
           "precompute: workspace %s already occurs in the statement (use the \
            target's result tensor for result reuse)"
           (Tensor_var.name workspace))
    else Ok ()
  in
  let rec go s =
    match s with
    | Cin.Assignment { lhs; op; rhs } ->
        let* node, mode = split ~expr ~over ~workspace lhs op rhs in
        Ok (node, Pushing mode)
    | Cin.Forall (j, body) ->
        let* body', st = go body in
        (match st with
        | Done -> Ok (Cin.Forall (j, body'), Done)
        | Pushing mode -> push j body' mode ~over)
    | Cin.Where (c, p) ->
        if stmt_contains_target ~expr c then
          let* c', st = go c in
          Ok (Cin.Where (c', p), st)
        else
          let* p', st = go p in
          Ok (Cin.Where (c, p'), st)
    | Cin.Sequence _ -> Error "precompute: unexpected sequence statement"
  in
  let* transformed, _ = go stmt in
  let result = convert_consumer transformed ~workspace ~over in
  match Cin.validate result with
  | Ok () -> Ok result
  | Error e -> Error ("precompute: internal error, produced invalid statement: " ^ e)
