open Var
module Dense = Taco_tensor.Dense

let rec stmt_accesses = function
  | Cin.Assignment { lhs; rhs; _ } -> lhs :: expr_accesses rhs
  | Cin.Forall (_, s) -> stmt_accesses s
  | Cin.Where (c, p) -> stmt_accesses c @ stmt_accesses p
  | Cin.Sequence (a, b) -> stmt_accesses a @ stmt_accesses b

and expr_accesses = function
  | Cin.Literal _ -> []
  | Cin.Access a -> [ a ]
  | Cin.Neg e -> expr_accesses e
  | Cin.Add (a, b) | Cin.Sub (a, b) | Cin.Mul (a, b) | Cin.Div (a, b) ->
      expr_accesses a @ expr_accesses b

let var_ranges stmt ~inputs =
  let ranges : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let err = ref None in
  let note v range =
    match Hashtbl.find_opt ranges (Index_var.name v) with
    | None -> Hashtbl.replace ranges (Index_var.name v) range
    | Some r ->
        if r <> range && !err = None then
          err :=
            Some
              (Printf.sprintf "index variable %s ranges over both %d and %d"
                 (Index_var.name v) r range)
  in
  List.iter
    (fun (a : Cin.access) ->
      match
        List.find_opt (fun (tv, _) -> Tensor_var.equal tv a.tensor) inputs
      with
      | None -> ()
      | Some (_, d) ->
          let dims = Dense.dims d in
          List.iteri (fun m v -> note v dims.(m)) a.indices)
    (stmt_accesses stmt);
  match !err with
  | Some e -> Error e
  | None -> (
      (* Every variable used anywhere must have a range. *)
      match
        List.find_opt
          (fun v -> not (Hashtbl.mem ranges (Index_var.name v)))
          (Cin.stmt_vars stmt)
      with
      | Some v ->
          Error
            (Printf.sprintf
               "cannot infer the range of %s (it indexes no bound input tensor)"
               (Index_var.name v))
      | None ->
          Ok
            (List.map
               (fun v -> (v, Hashtbl.find ranges (Index_var.name v)))
               (Cin.stmt_vars stmt)))

let eval stmt ~inputs =
  match Cin.validate stmt with
  | Error e -> Error e
  | Ok () -> (
      match var_ranges stmt ~inputs with
      | Error e -> Error e
      | Ok ranges ->
          let range v =
            match List.find_opt (fun (w, _) -> Index_var.equal v w) ranges with
            | Some (_, r) -> r
            | None -> invalid_arg "Cin_eval: unranged variable"
          in
          let store : (string, Dense.t) Hashtbl.t = Hashtbl.create 16 in
          List.iter
            (fun (tv, d) -> Hashtbl.replace store (Tensor_var.name tv) d)
            inputs;
          (* Allocate results and workspaces from access index ranges. *)
          let accesses = stmt_accesses stmt in
          List.iter
            (fun (a : Cin.access) ->
              let name = Tensor_var.name a.tensor in
              if not (Hashtbl.mem store name) then begin
                let dims = Array.of_list (List.map range a.indices) in
                Hashtbl.replace store name (Dense.create dims)
              end)
            accesses;
          let valuation : (string, int) Hashtbl.t = Hashtbl.create 16 in
          let coord indices =
            Array.of_list
              (List.map (fun v -> Hashtbl.find valuation (Index_var.name v)) indices)
          in
          let rec eval_expr = function
            | Cin.Literal v -> v
            | Cin.Access a ->
                Dense.get (Hashtbl.find store (Tensor_var.name a.tensor)) (coord a.indices)
            | Cin.Neg e -> -.eval_expr e
            | Cin.Add (a, b) -> eval_expr a +. eval_expr b
            | Cin.Sub (a, b) -> eval_expr a -. eval_expr b
            | Cin.Mul (a, b) -> eval_expr a *. eval_expr b
            | Cin.Div (a, b) -> eval_expr a /. eval_expr b
          in
          let rec eval_stmt = function
            | Cin.Assignment { lhs; op; rhs } -> (
                let t = Hashtbl.find store (Tensor_var.name lhs.tensor) in
                let c = coord lhs.indices in
                let v = eval_expr rhs in
                match op with
                | Cin.Assign -> Dense.set t c v
                | Cin.Accumulate -> Dense.add_at t c v)
            | Cin.Forall (v, s) ->
                let n = range v in
                for c = 0 to n - 1 do
                  Hashtbl.replace valuation (Index_var.name v) c;
                  eval_stmt s
                done;
                Hashtbl.remove valuation (Index_var.name v)
            | Cin.Where (c, p) ->
                List.iter
                  (fun tv ->
                    if Tensor_var.is_workspace tv then
                      Dense.fill (Hashtbl.find store (Tensor_var.name tv)) 0.)
                  (Cin.tensors_written p);
                eval_stmt p;
                eval_stmt c
            | Cin.Sequence (a, b) ->
                eval_stmt a;
                eval_stmt b
          in
          (* Results (written non-workspace tensors) start at zero. *)
          let results =
            List.filter
              (fun tv -> not (Tensor_var.is_workspace tv))
              (Cin.tensors_written stmt)
          in
          List.iter
            (fun tv -> Dense.fill (Hashtbl.find store (Tensor_var.name tv)) 0.)
            results;
          eval_stmt stmt;
          Ok
            (List.map
               (fun tv ->
                 let name = Tensor_var.name tv in
                 (name, Hashtbl.find store name))
               results))

let eval1 stmt ~inputs =
  match eval stmt ~inputs with
  | Error e -> Error e
  | Ok [ (_, d) ] -> Ok d
  | Ok rs ->
      Error
        (Printf.sprintf "expected exactly one result tensor, found %d" (List.length rs))
