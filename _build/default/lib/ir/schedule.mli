(** The scheduling API of paper §III: [reorder] and [precompute] commands
    applied to an index statement, in the spirit of Halide.

    A schedule wraps a concrete index notation statement; commands
    transform it and report precondition failures as [Error]. The result
    is handed to the lowering stage. *)

open Var

type t

(** Concretize an index notation statement into a fresh schedule. *)
val of_index_notation : ?scalar_temps:bool -> Index_notation.t -> (t, string) result

val of_stmt : Cin.stmt -> t

val stmt : t -> Cin.stmt

(** The paper's [reorder(k, j)]: exchange two loop variables. *)
val reorder : Index_var.t -> Index_var.t -> t -> (t, string) result

(** The paper's [precompute(expr, {{old, consumer, producer}, …}, w)]:
    apply the workspace transformation over the [old] variables, then
    rename each [old] to [consumer] on the consumer side and [producer]
    on the producer side (when that side rebinds it). *)
val precompute :
  expr:Cin.expr ->
  vars:(Index_var.t * Index_var.t * Index_var.t) list ->
  workspace:Tensor_var.t ->
  t ->
  (t, string) result

(** [precompute] without the renaming triplets. *)
val precompute_simple :
  expr:Cin.expr ->
  over:Index_var.t list ->
  workspace:Tensor_var.t ->
  t ->
  (t, string) result

(** Translate a [Sum]-free index notation expression for use as the
    [expr] argument of {!precompute}. *)
val expr_of_index_notation : Index_notation.expr -> (Cin.expr, string) result

val pp : Format.formatter -> t -> unit
