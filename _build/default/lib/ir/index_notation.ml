open Var

type expr =
  | Literal of float
  | Access of Tensor_var.t * Index_var.t list
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Sum of Index_var.t * expr

type op = Assign | Accumulate

type t = {
  lhs : Tensor_var.t;
  lhs_indices : Index_var.t list;
  op : op;
  rhs : expr;
}

let access tv indices = Access (tv, indices)

let assign lhs lhs_indices rhs = { lhs; lhs_indices; op = Assign; rhs }

let accumulate lhs lhs_indices rhs = { lhs; lhs_indices; op = Accumulate; rhs }

let sum v e = Sum (v, e)

let dedup = Taco_support.Util.dedup_stable

let rec vars_acc ~include_bound bound e =
  match e with
  | Literal _ -> []
  | Access (_, indices) ->
      List.filter (fun v -> not (List.exists (Index_var.equal v) bound)) indices
  | Neg a -> vars_acc ~include_bound bound a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      vars_acc ~include_bound bound a @ vars_acc ~include_bound bound b
  | Sum (v, a) ->
      if include_bound then v :: vars_acc ~include_bound bound a
      else vars_acc ~include_bound (v :: bound) a

let free_vars e = dedup (vars_acc ~include_bound:false [] e)

let all_vars e = dedup (vars_acc ~include_bound:true [] e)

let rec sum_bound_vars = function
  | Literal _ | Access _ -> []
  | Neg a -> sum_bound_vars a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      sum_bound_vars a @ sum_bound_vars b
  | Sum (v, a) -> v :: sum_bound_vars a

let reduction_vars t =
  let on_lhs v = List.exists (Index_var.equal v) t.lhs_indices in
  dedup (List.filter (fun v -> not (on_lhs v)) (all_vars t.rhs))

let rec tensors_of_expr = function
  | Literal _ -> []
  | Access (tv, _) -> [ tv ]
  | Neg a -> tensors_of_expr a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      tensors_of_expr a @ tensors_of_expr b
  | Sum (_, a) -> tensors_of_expr a

let tensors t = dedup (t.lhs :: tensors_of_expr t.rhs)

let validate t =
  let ( let* ) r f = Result.bind r f in
  let rec check_expr bound = function
    | Literal _ -> Ok ()
    | Access (tv, indices) ->
        if List.length indices <> Tensor_var.order tv then
          Error
            (Printf.sprintf "access to %s has %d indices but order is %d"
               (Tensor_var.name tv) (List.length indices) (Tensor_var.order tv))
        else if Tensor_var.equal tv t.lhs then
          Error
            (Printf.sprintf "result tensor %s may not appear on the right-hand side"
               (Tensor_var.name tv))
        else Ok ()
    | Neg a -> check_expr bound a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
        let* () = check_expr bound a in
        check_expr bound b
    | Sum (v, a) ->
        if List.exists (Index_var.equal v) bound then
          Error (Printf.sprintf "sum variable %s shadows an enclosing binder" (Index_var.name v))
        else check_expr (v :: bound) a
  in
  let* () =
    if List.length t.lhs_indices <> Tensor_var.order t.lhs then
      Error
        (Printf.sprintf "left-hand side of %s has %d indices but order is %d"
           (Tensor_var.name t.lhs) (List.length t.lhs_indices)
           (Tensor_var.order t.lhs))
    else Ok ()
  in
  let* () =
    if List.length (dedup t.lhs_indices) <> List.length t.lhs_indices then
      Error "repeated index variable on the left-hand side"
    else Ok ()
  in
  let* () =
    let bound = sum_bound_vars t.rhs in
    if List.length (dedup bound) <> List.length bound then
      Error "repeated sum binder"
    else if List.exists (fun v -> List.exists (Index_var.equal v) t.lhs_indices) bound
    then Error "sum binder shadows a left-hand side index"
    else Ok ()
  in
  check_expr [] t.rhs

let prec = function
  | Literal _ | Access _ | Sum _ -> 3
  | Neg _ -> 2
  | Mul _ | Div _ -> 1
  | Add _ | Sub _ -> 0

let rec pp_expr fmt e =
  let child parent fmt e =
    if prec e < prec parent then Format.fprintf fmt "(%a)" pp_expr e
    else pp_expr fmt e
  in
  match e with
  | Literal v -> Format.fprintf fmt "%g" v
  | Access (tv, []) -> Tensor_var.pp fmt tv
  | Access (tv, indices) ->
      Format.fprintf fmt "%a(%s)" Tensor_var.pp tv
        (String.concat "," (List.map Index_var.name indices))
  | Neg a -> Format.fprintf fmt "-%a" (child e) a
  | Add (a, b) -> Format.fprintf fmt "%a + %a" (child e) a (child e) b
  | Sub (a, b) -> Format.fprintf fmt "%a - %a" (child e) a (child e) b
  | Mul (a, b) -> Format.fprintf fmt "%a * %a" (child e) a (child e) b
  | Div (a, b) -> Format.fprintf fmt "%a / %a" (child e) a (child e) b
  | Sum (v, a) -> Format.fprintf fmt "sum(%a, %a)" Index_var.pp v pp_expr a

let pp fmt t =
  let op = match t.op with Assign -> "=" | Accumulate -> "+=" in
  Format.fprintf fmt "%a %s %a" pp_expr
    (Access (t.lhs, t.lhs_indices))
    op pp_expr t.rhs

let to_string t = Format.asprintf "%a" pp t
