(** A simple scheduling policy system (the future work the paper's §I
    proposes building on top of the scheduling API): drive a statement to
    a lowerable, efficient form automatically.

    The policy iterates:
    + fix format/loop-order incompatibilities by reordering (the compiled
      error messages name the offending variable);
    + apply the §V-C workspace heuristics (scatter into sparse results,
      wide merges, loop-invariant sub-products);
    until the supplied [lowerable] check accepts the statement or no rule
    fires. The result records which steps were taken, so users can audit
    (and replay through the manual API) what the policy chose. *)

open Var

type step =
  | Reordered of Index_var.t * Index_var.t
  | Precomputed of Heuristics.suggestion * Tensor_var.t  (** and its workspace *)

val step_to_string : step -> string

(** [run ~lowerable stmt] — [lowerable] returns [Ok ()] or the lowering
    error message for a candidate statement (pass
    [fun s -> Result.map ignore (Lower.lower ~mode s)] from the caller;
    this module cannot depend on the lowering library). *)
val run :
  lowerable:(Cin.stmt -> (unit, string) result) ->
  Cin.stmt ->
  (Cin.stmt * step list, string) result
