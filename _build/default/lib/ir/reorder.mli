(** Reordering transformations on concrete index notation (paper §IV-B).

    Each primitive applies at the root of the given statement and returns
    [Error] when its precondition fails. Semantic equivalence of each rule
    is property-tested against {!Cin_eval}. None of the statements being
    reordered may contain sequence statements. *)

open Var

(** [∀i ∀j S → ∀j ∀i S]. Requires [S] sequence-free (incrementing
    assignments use the associative [+]). *)
val exchange_foralls : Cin.stmt -> (Cin.stmt, string) result

(** [∀j (S1 where S2) → (∀j S1) where S2] when [S2] does not use [j]
    (loop-invariant code motion). *)
val hoist_producer : Cin.stmt -> (Cin.stmt, string) result

(** [(∀j S1) where S2 → ∀j (S1 where S2)] when [S2] does not use [j]. *)
val sink_forall : Cin.stmt -> (Cin.stmt, string) result

(** [∀j (S1 where S2) → (∀j S1) where (∀j S2)] when [S2] assigns (does not
    increment); changes reuse distance. *)
val split_forall : Cin.stmt -> (Cin.stmt, string) result

(** [(∀j S1) where (∀j S2) → ∀j (S1 where S2)], inverse of
    {!split_forall}. *)
val fuse_forall : Cin.stmt -> (Cin.stmt, string) result

(** [(S1 where S2) where S3 → S1 where (S2 where S3)] when [S1] does not
    use the tensor modified by [S3]. *)
val where_reassoc : Cin.stmt -> (Cin.stmt, string) result

(** [S1 where (S2 where S3) → (S1 where S2) where S3], inverse of
    {!where_reassoc}. *)
val where_unassoc : Cin.stmt -> (Cin.stmt, string) result

(** [(S1 where S2) where S3 → (S1 where S3) where S2] when [S2] and [S3]
    do not use each other's modified tensors. *)
val where_swap : Cin.stmt -> (Cin.stmt, string) result

(** User-level reorder (the paper's [reorder(k, j)] scheduling command):
    swap two index variables in the forall nest that binds both. The nest
    must bind both variables contiguously-scoped (any statements between
    them are foralls) and the body must be sequence-free. Searches where
    and sequence children recursively for the nest. *)
val reorder : Index_var.t -> Index_var.t -> Cin.stmt -> (Cin.stmt, string) result
