(** Reference interpreter for concrete index notation over dense tensors.

    Direct implementation of the loop-nest semantics shown in gray in the
    paper's examples: foralls iterate dimension ranges, where statements
    zero their workspaces, run the producer, then the consumer. Used as
    the semantic oracle when testing that reorder and the workspace
    transformation preserve meaning. *)

open Var

(** [var_ranges stmt ~inputs] infers every index variable's range from the
    dimensions of the bound (non-workspace) tensors it indexes. Fails when
    a variable only indexes workspaces or two tensors disagree. *)
val var_ranges :
  Cin.stmt ->
  inputs:(Tensor_var.t * Taco_tensor.Dense.t) list ->
  ((Index_var.t * int) list, string) result

(** [eval stmt ~inputs] runs the statement. [inputs] binds every
    non-workspace tensor read before being written; written non-workspace
    tensors (the results) are allocated and zero-initialized, workspaces
    are allocated from their index variables' ranges and zeroed at each
    where statement. Returns the written non-workspace tensors by name. *)
val eval :
  Cin.stmt ->
  inputs:(Tensor_var.t * Taco_tensor.Dense.t) list ->
  ((string * Taco_tensor.Dense.t) list, string) result

(** Single-result convenience: evaluate and return the one result tensor.
    Fails if the statement writes no or several non-workspace tensors. *)
val eval1 :
  Cin.stmt ->
  inputs:(Tensor_var.t * Taco_tensor.Dense.t) list ->
  (Taco_tensor.Dense.t, string) result
