module Index_var = struct
  type t = string

  let make name =
    if name = "" then invalid_arg "Index_var.make: empty name";
    name

  let counter = ref 0

  let fresh base =
    incr counter;
    Printf.sprintf "%s_%d" base !counter

  let name t = t

  let equal = String.equal

  let compare = String.compare

  let pp fmt t = Format.pp_print_string fmt t
end

module Tensor_var = struct
  type t = {
    name : string;
    order : int;
    format : Taco_tensor.Format.t;
    is_workspace : bool;
  }

  let check name ~order ~format =
    if name = "" then invalid_arg "Tensor_var: empty name";
    if order < 0 then invalid_arg "Tensor_var: negative order";
    if Taco_tensor.Format.order format <> order then
      invalid_arg "Tensor_var: format order mismatch"

  let make name ~order ~format =
    check name ~order ~format;
    { name; order; format; is_workspace = false }

  let workspace name ~order ~format =
    check name ~order ~format;
    { name; order; format; is_workspace = true }

  let name t = t.name

  let order t = t.order

  let format t = t.format

  let is_workspace t = t.is_workspace

  let equal a b = String.equal a.name b.name

  let compare a b = String.compare a.name b.name

  let pp fmt t = Format.pp_print_string fmt t.name
end
