(** Index variables and tensor variables of (concrete) index notation. *)

module Index_var : sig
  (** An index variable such as [i], [j], [k] in [A(i,j) = B(i,k)*C(k,j)]. *)
  type t

  val make : string -> t

  (** A fresh variable whose name extends [base] with a unique suffix. *)
  val fresh : string -> t

  val name : t -> string

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val pp : Format.formatter -> t -> unit
end

module Tensor_var : sig
  (** An abstract tensor: a name, an order and a storage format. Dimensions
      are bound later, when a kernel is specialized to concrete tensors, so
      transformations and lowering stay size-generic (as in taco). *)
  type t

  (** [make name ~order ~format] — [format] must have order [order]. *)
  val make : string -> order:int -> format:Taco_tensor.Format.t -> t

  (** A workspace tensor variable (introduced by [precompute]). *)
  val workspace : string -> order:int -> format:Taco_tensor.Format.t -> t

  val name : t -> string

  val order : t -> int

  val format : t -> Taco_tensor.Format.t

  val is_workspace : t -> bool

  (** Equality is by name: a tensor variable denotes one runtime tensor. *)
  val equal : t -> t -> bool

  val compare : t -> t -> int

  val pp : Format.formatter -> t -> unit
end
