lib/exec/kernel.mli: Compile Taco_ir Taco_lower Taco_tensor Tensor_var
