lib/exec/compile.mli: Taco_lower
