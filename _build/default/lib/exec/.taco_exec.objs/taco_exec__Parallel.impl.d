lib/exec/parallel.ml: Array Domain Kernel List Taco_ir Taco_tensor Tensor_var
