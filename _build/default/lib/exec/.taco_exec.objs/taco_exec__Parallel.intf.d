lib/exec/parallel.mli: Kernel Taco_ir Taco_tensor Tensor_var
