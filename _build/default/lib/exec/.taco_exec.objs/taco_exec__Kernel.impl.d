lib/exec/kernel.ml: Array Compile List Printf Taco_ir Taco_lower Taco_support Taco_tensor Tensor_var
