lib/exec/compile.ml: Array Float Hashtbl Int32 List Printf Taco_lower
