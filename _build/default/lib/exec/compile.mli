(** Executing imperative IR kernels.

    The paper compiles emitted C with a system compiler; in this sealed
    reproduction the imperative IR is instead compiled to OCaml closures
    over a slot-based environment (variable names resolve to array slots
    at compile time, so no hashing happens in loops). All benchmarked
    variants — generated and hand-written baselines — run through this
    same executor, so relative comparisons are apples-to-apples. *)

type compiled

(** Values bound to kernel parameters (arrays are shared, not copied:
    output arrays are written in place). *)
type arg =
  | Aint of int
  | Afloat of float
  | Aint_array of int array
  | Afloat_array of float array

(** Typecheck and compile a kernel. Raises [Invalid_argument] on malformed
    IR (unknown variables, type mismatches). *)
val compile : Taco_lower.Imp.kernel -> compiled

val kernel : compiled -> Taco_lower.Imp.kernel

(** [run compiled ~args] binds parameters by name and executes. Returns a
    reader for variables left in the environment (used to retrieve arrays
    the kernel allocated, e.g. assembled indices). Missing or ill-typed
    bindings raise [Invalid_argument]. *)
val run : compiled -> args:(string * arg) list -> (string -> arg)
