(** Assorted helpers shared across the compiler and the tensor substrate. *)

(** [binary_search a lo hi x] returns the position of [x] in the sorted
    slice [a.(lo) .. a.(hi-1)], or [None] when absent. *)
val binary_search : int array -> int -> int -> int -> int option

(** [lower_bound a lo hi x] is the first position in the sorted slice at
    which [x] could be inserted while keeping it sorted. *)
val lower_bound : int array -> int -> int -> int -> int

(** Sort [keys.(lo) .. keys.(hi-1)] in increasing order, permuting the
    corresponding slice of [payload] in lock step. *)
val sort_paired : int array -> float array -> int -> int -> unit

(** Timing helper: wall-clock seconds spent in the thunk. *)
val time : (unit -> 'a) -> 'a * float

(** [median xs] of a non-empty list. *)
val median : float list -> float

(** Least element of a non-empty list under [compare]. *)
val min_float_list : float list -> float

(** [string_of_list f sep xs]. *)
val string_of_list : ('a -> string) -> string -> 'a list -> string

(** [list_index_of x xs] is the position of the first occurrence. *)
val list_index_of : 'a -> 'a list -> int option

(** Deduplicate while preserving first-occurrence order. *)
val dedup_stable : 'a list -> 'a list

(** All subsets of a list, each subset preserving element order. *)
val subsets : 'a list -> 'a list list

(** Round [x] to [digits] decimal digits (for stable printed output). *)
val round_to : int -> float -> float
