module Int = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 8) () =
    { data = Array.make (max capacity 1) 0; len = 0 }

  let length t = t.len

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Dyn_array.Int.get";
    t.data.(i)

  let set t i v =
    if i < 0 || i >= t.len then invalid_arg "Dyn_array.Int.set";
    t.data.(i) <- v

  let grow t n =
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    if !cap > Array.length t.data then begin
      let data = Array.make !cap 0 in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end

  let push t v =
    grow t (t.len + 1);
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let ensure t n =
    if n > t.len then begin
      grow t n;
      Array.fill t.data t.len (n - t.len) 0;
      t.len <- n
    end

  let clear t = t.len <- 0

  let to_array t = Array.sub t.data 0 t.len

  let of_array a = { data = Array.copy (if Array.length a = 0 then [| 0 |] else a); len = Array.length a }

  let iter f t =
    for i = 0 to t.len - 1 do
      f t.data.(i)
    done

  let sort t =
    let a = to_array t in
    Array.sort compare a;
    Array.blit a 0 t.data 0 t.len

  let unsafe_backing t = t.data
end

module Float = struct
  type t = { mutable data : float array; mutable len : int }

  let create ?(capacity = 8) () =
    { data = Array.make (max capacity 1) 0.; len = 0 }

  let length t = t.len

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Dyn_array.Float.get";
    t.data.(i)

  let set t i v =
    if i < 0 || i >= t.len then invalid_arg "Dyn_array.Float.set";
    t.data.(i) <- v

  let grow t n =
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    if !cap > Array.length t.data then begin
      let data = Array.make !cap 0. in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end

  let push t v =
    grow t (t.len + 1);
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let ensure t n =
    if n > t.len then begin
      grow t n;
      Array.fill t.data t.len (n - t.len) 0.;
      t.len <- n
    end

  let clear t = t.len <- 0

  let to_array t = Array.sub t.data 0 t.len

  let of_array a =
    { data = Array.copy (if Array.length a = 0 then [| 0. |] else a); len = Array.length a }

  let unsafe_backing t = t.data
end
