(** Growable arrays specialized to [int] and [float].

    Sparse tensor assembly appends coordinates and values whose final count
    is unknown up front; these buffers grow geometrically (doubling), the
    same policy as the reallocation loop in the paper's Fig. 8. *)

module Int : sig
  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int

  val get : t -> int -> int

  val set : t -> int -> int -> unit

  val push : t -> int -> unit

  (** [ensure t n] grows the backing store so that indices [0, n) are
      addressable, filling fresh cells with [0] and extending [length]. *)
  val ensure : t -> int -> unit

  val clear : t -> unit

  (** Copy out the first [length t] elements. *)
  val to_array : t -> int array

  val of_array : int array -> t

  val iter : (int -> unit) -> t -> unit

  (** Sort the live prefix in increasing order. *)
  val sort : t -> unit

  (** Unsafe view of the backing store; indices beyond [length t] are
      garbage. Used by the kernel executor to avoid copies. *)
  val unsafe_backing : t -> int array
end

module Float : sig
  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int

  val get : t -> int -> float

  val set : t -> int -> float -> unit

  val push : t -> float -> unit

  val ensure : t -> int -> unit

  val clear : t -> unit

  val to_array : t -> float array

  val of_array : float array -> t

  val unsafe_backing : t -> float array
end
