(** Deterministic pseudo-random number generator (splitmix64).

    Every random workload in the repository (synthetic matrices, tensors,
    qcheck-independent fuzzing) draws from an explicitly seeded [t] so that
    tests and benchmarks are reproducible run to run. *)

type t

val create : int -> t

(** Raw next value, full 64-bit state advance. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** [bool t p] is true with probability [p]. *)
val bool : t -> float -> bool

(** Fisher-Yates shuffle of a prefix-free array, in place. *)
val shuffle : t -> 'a array -> unit

(** [sample_without_replacement t ~n ~k] draws [k] distinct values from
    [0, n) in increasing order. Requires [k <= n]. Uses Floyd's algorithm,
    O(k) expected time and memory. *)
val sample_without_replacement : t -> n:int -> k:int -> int array

(** [split t] derives an independent generator; advancing one does not
    affect the other. *)
val split : t -> t
