type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t =
  (* 53 random bits scaled to [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let bool t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~n ~k =
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  (* Floyd's algorithm: for j in n-k..n-1, draw r in [0, j]; insert r if
     fresh else insert j. Guarantees uniform k-subsets. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun key () ->
      out.(!i) <- key;
      incr i)
    chosen;
  Array.sort compare out;
  out

let split t =
  let seed = next_int64 t in
  { state = seed }
