lib/support/prng.mli:
