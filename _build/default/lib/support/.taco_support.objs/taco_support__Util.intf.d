lib/support/util.mli:
