let binary_search a lo hi x =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = lo + ((hi - lo) / 2) in
      let v = a.(mid) in
      if v = x then Some mid else if v < x then go (mid + 1) hi else go lo mid
  in
  go lo hi

let lower_bound a lo hi x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < x then go (mid + 1) hi else go lo mid
  in
  go lo hi

let sort_paired keys payload lo hi =
  let n = hi - lo in
  if n > 1 then begin
    let perm = Array.init n (fun i -> lo + i) in
    Array.sort (fun i j -> compare keys.(i) keys.(j)) perm;
    let ks = Array.init n (fun i -> keys.(perm.(i))) in
    let vs = Array.init n (fun i -> payload.(perm.(i))) in
    Array.blit ks 0 keys lo n;
    Array.blit vs 0 payload lo n
  end

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let median xs =
  match xs with
  | [] -> invalid_arg "Util.median: empty"
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let min_float_list = function
  | [] -> invalid_arg "Util.min_float_list: empty"
  | x :: xs -> List.fold_left min x xs

let string_of_list f sep xs = String.concat sep (List.map f xs)

let list_index_of x xs =
  let rec go i = function
    | [] -> None
    | y :: ys -> if x = y then Some i else go (i + 1) ys
  in
  go 0 xs

let dedup_stable xs =
  let rec go seen = function
    | [] -> []
    | x :: rest -> if List.mem x seen then go seen rest else x :: go (x :: seen) rest
  in
  go [] xs

let subsets xs =
  List.fold_right (fun x acc -> List.map (fun s -> x :: s) acc @ acc) xs [ [] ]

let round_to digits x =
  let scale = 10. ** float_of_int digits in
  Float.round (x *. scale) /. scale
