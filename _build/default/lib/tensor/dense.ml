type t = { dims : int array; strides : int array; data : float array }

let strides_of dims =
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  strides

let create dims =
  if Array.exists (fun d -> d <= 0) dims then invalid_arg "Dense.create: non-positive dim";
  let size = Array.fold_left ( * ) 1 dims in
  { dims = Array.copy dims; strides = strides_of dims; data = Array.make size 0. }

let dims t = Array.copy t.dims

let order t = Array.length t.dims

let size t = Array.length t.data

let offset t coord =
  if Array.length coord <> Array.length t.dims then invalid_arg "Dense.offset: rank mismatch";
  let off = ref 0 in
  for i = 0 to Array.length coord - 1 do
    let c = coord.(i) in
    if c < 0 || c >= t.dims.(i) then invalid_arg "Dense.offset: out of bounds";
    off := !off + (c * t.strides.(i))
  done;
  !off

let get t coord = t.data.(offset t coord)

let set t coord v = t.data.(offset t coord) <- v

let add_at t coord v =
  let off = offset t coord in
  t.data.(off) <- t.data.(off) +. v

let buffer t = t.data

let of_buffer dims data =
  let size = Array.fold_left ( * ) 1 dims in
  if Array.length data <> size then invalid_arg "Dense.of_buffer: size mismatch";
  { dims = Array.copy dims; strides = strides_of dims; data }

let iteri f t =
  let n = order t in
  let coord = Array.make n 0 in
  let rec go dim =
    if dim = n then f coord (get t coord)
    else
      for c = 0 to t.dims.(dim) - 1 do
        coord.(dim) <- c;
        go (dim + 1)
      done
  in
  if Array.length t.data > 0 then go 0

let init dims f =
  let t = create dims in
  iteri (fun coord _ -> set t coord (f coord)) t;
  t

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let copy t = { t with data = Array.copy t.data }

let nnz t =
  Array.fold_left (fun acc v -> if v <> 0. then acc + 1 else acc) 0 t.data

let equal ?(eps = 1e-9) a b =
  a.dims = b.dims
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps *. Float.max 1. (Float.max (Float.abs x) (Float.abs y))) a.data b.data

let map2 f a b =
  if a.dims <> b.dims then invalid_arg "Dense.map2: shape mismatch";
  { a with data = Array.map2 f a.data b.data }

let pp fmt t =
  Stdlib.Format.fprintf fmt "dense[%s](%d nnz)"
    (Taco_support.Util.string_of_list string_of_int "x" (Array.to_list t.dims))
    (nnz t)
