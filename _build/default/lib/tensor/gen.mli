(** Random tensor generators.

    Mirrors the taco random matrix generator used by the paper: nonzeros
    placed uniformly at random to reach a target sparsity, values uniform
    in [0, 1). All generators are deterministic in the supplied PRNG. *)

(** [random_coo prng ~dims ~nnz] draws exactly [nnz] distinct coordinates
    uniformly (requires [nnz] no larger than the number of components). *)
val random_coo : Taco_support.Prng.t -> dims:int array -> nnz:int -> Coo.t

(** [random prng ~dims ~nnz fmt] packs a random coordinate buffer. *)
val random : Taco_support.Prng.t -> dims:int array -> nnz:int -> Format.t -> Tensor.t

(** [random_density prng ~dims ~density fmt] targets
    [nnz = density * product dims] (rounded, at least 1). *)
val random_density :
  Taco_support.Prng.t -> dims:int array -> density:float -> Format.t -> Tensor.t

(** [random_dense prng dims] is fully dense with uniform values. *)
val random_dense : Taco_support.Prng.t -> int array -> Dense.t

(** [banded_matrix prng ~n ~bandwidth ~fill] places nonzeros only within
    [bandwidth] of the diagonal, each present with probability [fill]
    (an FEM-like structure used by the Table I stand-ins). *)
val banded_matrix : Taco_support.Prng.t -> n:int -> bandwidth:int -> fill:float -> Tensor.t

(** [clustered3 prng ~dims ~nnz ~avg_fiber] draws an order-3 tensor whose
    nonzeros cluster into (i,k) fibers of [avg_fiber] entries on average,
    like real data-analytics tensors (uniform placement yields fibers of
    length < 1 on large tensors, which misrepresents MTTKRP's fiber
    reuse). The realized count can be slightly below [nnz] after
    duplicate merging. *)
val clustered3 :
  Taco_support.Prng.t -> dims:int array -> nnz:int -> avg_fiber:float -> Coo.t
