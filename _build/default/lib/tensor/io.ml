let with_in path f =
  let ic = open_in path in
  match f ic with
  | v ->
      close_in ic;
      v
  | exception e ->
      close_in_noerr ic;
      raise e

let with_out path f =
  let oc = open_out path in
  match f oc with
  | v ->
      close_out oc;
      v
  | exception e ->
      close_out_noerr oc;
      raise e

exception Bad_file of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad_file s)) fmt

let split_ws line =
  String.split_on_char ' ' (String.trim line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let int_field what s =
  match int_of_string_opt s with Some v -> v | None -> fail "malformed %s: %s" what s

let float_field what s =
  match float_of_string_opt s with Some v -> v | None -> fail "malformed %s: %s" what s

let read_matrix_market path =
  match
    with_in path (fun ic ->
        let header = input_line ic in
        let lower = String.lowercase_ascii header in
        if not (String.length lower >= 14 && String.sub lower 0 14 = "%%matrixmarket")
        then fail "not a MatrixMarket file";
        let has word =
          let rec contains i =
            i + String.length word <= String.length lower
            && (String.sub lower i (String.length word) = word || contains (i + 1))
          in
          contains 0
        in
        if not (has "coordinate") then fail "only coordinate format is supported";
        let symmetric = has "symmetric" in
        let pattern = has "pattern" in
        if has "complex" then fail "complex matrices are not supported";
        (* Skip comments, read the size line. *)
        let rec size_line () =
          let line = input_line ic in
          if String.length line > 0 && line.[0] = '%' then size_line () else line
        in
        let rows, cols, nnz =
          match split_ws (size_line ()) with
          | [ r; c; n ] ->
              (int_field "rows" r, int_field "cols" c, int_field "nnz" n)
          | _ -> fail "malformed size line"
        in
        let coo = Coo.create [| rows; cols |] in
        for _ = 1 to nnz do
          match split_ws (input_line ic) with
          | r :: c :: rest ->
              let i = int_field "row" r - 1 and j = int_field "col" c - 1 in
              let v =
                match (pattern, rest) with
                | true, _ -> 1.
                | false, [ v ] -> float_field "value" v
                | false, _ -> fail "missing value"
              in
              Coo.push coo [| i; j |] v;
              if symmetric && i <> j then Coo.push coo [| j; i |] v
          | _ -> fail "malformed entry"
        done;
        coo)
  with
  | coo -> Ok coo
  | exception Bad_file msg -> Error msg
  | exception End_of_file -> Error "unexpected end of file"
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let write_matrix_market path t =
  if Tensor.order t <> 2 then invalid_arg "Io.write_matrix_market: order-2 only";
  with_out path (fun oc ->
      let dims = Tensor.dims t in
      let entries = ref [] in
      let count = ref 0 in
      Tensor.iteri_stored
        (fun c v ->
          if v <> 0. then begin
            entries := (c.(0) + 1, c.(1) + 1, v) :: !entries;
            incr count
          end)
        t;
      output_string oc "%%MatrixMarket matrix coordinate real general\n";
      Printf.fprintf oc "%d %d %d\n" dims.(0) dims.(1) !count;
      List.iter
        (fun (i, j, v) -> Printf.fprintf oc "%d %d %.17g\n" i j v)
        (List.rev !entries))

let read_frostt ?dims path =
  match
    with_in path (fun ic ->
        let entries = ref [] in
        (try
           while true do
             let line = input_line ic in
             let line = String.trim line in
             if line <> "" && line.[0] <> '#' && line.[0] <> '%' then begin
               match List.rev (split_ws line) with
               | value :: rev_coords when rev_coords <> [] ->
                   let coords =
                     List.rev_map (fun s -> int_field "coordinate" s - 1) rev_coords
                   in
                   entries := (Array.of_list coords, float_field "value" value) :: !entries
               | _ -> fail "malformed line: %s" line
             end
           done
         with End_of_file -> ());
        let entries = List.rev !entries in
        let order =
          match entries with
          | [] -> ( match dims with Some d -> Array.length d | None -> fail "empty tensor and no dims")
          | (c, _) :: _ -> Array.length c
        in
        List.iter
          (fun (c, _) ->
            if Array.length c <> order then fail "inconsistent coordinate arity")
          entries;
        let dims =
          match dims with
          | Some d ->
              if Array.length d <> order then fail "dims arity mismatch";
              d
          | None ->
              let d = Array.make order 1 in
              List.iter
                (fun (c, _) ->
                  Array.iteri (fun m x -> if x + 1 > d.(m) then d.(m) <- x + 1) c)
                entries;
              d
        in
        let coo = Coo.create dims in
        List.iter (fun (c, v) -> Coo.push coo c v) entries;
        coo)
  with
  | coo -> Ok coo
  | exception Bad_file msg -> Error msg
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let write_frostt path t =
  with_out path (fun oc ->
      Tensor.iteri_stored
        (fun c v ->
          if v <> 0. then begin
            Array.iter (fun x -> Printf.fprintf oc "%d " (x + 1)) c;
            Printf.fprintf oc "%.17g\n" v
          end)
        t)
