lib/tensor/tensor.ml: Array Coo Dense Format Level Printf Result Stdlib Taco_support
