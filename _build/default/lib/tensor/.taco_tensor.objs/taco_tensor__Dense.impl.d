lib/tensor/dense.ml: Array Float Stdlib Taco_support
