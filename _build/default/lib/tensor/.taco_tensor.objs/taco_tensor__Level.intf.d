lib/tensor/level.mli: Stdlib
