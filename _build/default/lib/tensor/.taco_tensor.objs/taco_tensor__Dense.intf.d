lib/tensor/dense.mli: Stdlib
