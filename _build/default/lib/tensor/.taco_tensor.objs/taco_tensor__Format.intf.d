lib/tensor/format.mli: Level Stdlib
