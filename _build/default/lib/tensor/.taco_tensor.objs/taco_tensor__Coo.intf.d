lib/tensor/coo.mli: Dense
