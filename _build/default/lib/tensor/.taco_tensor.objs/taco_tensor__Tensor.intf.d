lib/tensor/tensor.mli: Coo Dense Format Stdlib
