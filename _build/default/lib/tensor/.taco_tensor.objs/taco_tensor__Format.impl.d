lib/tensor/format.ml: Array Fun Level List Printf Stdlib Taco_support
