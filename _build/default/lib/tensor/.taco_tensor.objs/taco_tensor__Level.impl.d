lib/tensor/level.ml: Stdlib
