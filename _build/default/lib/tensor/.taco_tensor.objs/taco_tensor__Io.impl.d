lib/tensor/io.ml: Array Coo List Printf String Tensor
