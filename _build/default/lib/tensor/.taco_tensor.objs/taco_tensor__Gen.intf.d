lib/tensor/gen.mli: Coo Dense Format Taco_support Tensor
