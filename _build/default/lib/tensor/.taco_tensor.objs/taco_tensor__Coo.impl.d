lib/tensor/coo.ml: Array Dense Fun List Taco_support
