lib/tensor/suite.ml: Array Coo Format Gen Hashtbl Taco_support Tensor
