lib/tensor/io.mli: Coo Tensor
