lib/tensor/suite.mli: Tensor
