lib/tensor/gen.ml: Array Coo Dense Format Hashtbl Taco_support Tensor
