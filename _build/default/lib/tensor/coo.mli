(** Coordinate-list buffers: the insertion format tensors are built in
    before being packed into a compressed format. *)

type t

val create : int array -> t

val dims : t -> int array

val order : t -> int

(** Number of entries pushed so far (duplicates included). *)
val length : t -> int

(** [push t coord v] appends an entry; coordinates are bounds-checked. *)
val push : t -> int array -> float -> unit

(** Entries sorted lexicographically by [perm]-permuted coordinates with
    duplicate coordinates summed. Returns [(coords, vals)] where
    [coords.(k)] is the (logical, unpermuted) coordinate of entry [k]. *)
val sorted_unique : perm:int array -> t -> int array array * float array

val of_dense : Dense.t -> t

val to_dense : t -> Dense.t

val iter : (int array -> float -> unit) -> t -> unit
