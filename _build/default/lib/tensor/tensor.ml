module Dyn = Taco_support.Dyn_array
module Util = Taco_support.Util

type level_data =
  | Dense_data of { size : int }
  | Compressed_data of { pos : int array; crd : int array }

type t = {
  dims : int array;
  format : Format.t;
  levels : level_data array;
  vals : float array;
}

let dims t = Array.copy t.dims

let order t = Array.length t.dims

let format t = t.format

let level_data t l =
  if l < 0 || l >= order t then invalid_arg "Tensor.level_data";
  t.levels.(l)

let vals t = t.vals

let stored t = Array.length t.vals

let validate t =
  let ( let* ) r f = Result.bind r f in
  let n = order t in
  let* () =
    if Array.length t.levels <> n then Error "level count differs from order" else Ok ()
  in
  let rec check l parent_positions =
    if l = n then
      if Array.length t.vals <> parent_positions then
        Error
          (Printf.sprintf "vals has %d entries, expected %d" (Array.length t.vals)
             parent_positions)
      else Ok ()
    else
      let dim = t.dims.(Format.mode_of_level t.format l) in
      match t.levels.(l) with
      | Dense_data { size } ->
          if size <> dim then Error (Printf.sprintf "dense level %d size mismatch" l)
          else check (l + 1) (parent_positions * size)
      | Compressed_data { pos; crd } ->
          if Array.length pos <> parent_positions + 1 then
            Error (Printf.sprintf "level %d pos has wrong length" l)
          else if pos.(0) <> 0 then Error (Printf.sprintf "level %d pos.(0) <> 0" l)
          else begin
            let ok = ref (Ok ()) in
            for p = 0 to parent_positions - 1 do
              if pos.(p) > pos.(p + 1) then
                ok := Error (Printf.sprintf "level %d pos not monotone at %d" l p);
              for k = pos.(p) to pos.(p + 1) - 1 do
                if crd.(k) < 0 || crd.(k) >= dim then
                  ok := Error (Printf.sprintf "level %d crd out of bounds at %d" l k);
                if k > pos.(p) && crd.(k - 1) >= crd.(k) then
                  ok :=
                    Error (Printf.sprintf "level %d crd not strictly sorted at %d" l k)
              done
            done;
            let* () = !ok in
            if Array.length crd < pos.(parent_positions) then
              Error (Printf.sprintf "level %d crd too short" l)
            else check (l + 1) pos.(parent_positions)
          end
  in
  check 0 1

let of_parts ~dims ~format ~levels ~vals =
  let t = { dims = Array.copy dims; format; levels; vals } in
  match validate t with Ok () -> t | Error msg -> invalid_arg ("Tensor.of_parts: " ^ msg)

let pack coo fmt =
  let n_modes = Coo.order coo in
  if Format.order fmt <> n_modes then invalid_arg "Tensor.pack: format order mismatch";
  let dims = Coo.dims coo in
  let perm = Array.of_list (Format.mode_order fmt) in
  let coords, in_vals = Coo.sorted_unique ~perm coo in
  let n = Array.length in_vals in
  (* Segments: ranges of [coords] rows per position at the current level.
     Represented as flat (lo, hi) pairs. *)
  let seg_lo = ref (Dyn.Int.create ()) and seg_hi = ref (Dyn.Int.create ()) in
  Dyn.Int.push !seg_lo 0;
  Dyn.Int.push !seg_hi n;
  let levels = Array.make n_modes (Dense_data { size = 0 }) in
  for l = 0 to n_modes - 1 do
    let mode = perm.(l) in
    let dim = dims.(mode) in
    let coord_at k = coords.(k).(mode) in
    let next_lo = Dyn.Int.create () and next_hi = Dyn.Int.create () in
    (match Format.level fmt l with
    | Level.Dense ->
        levels.(l) <- Dense_data { size = dim };
        for s = 0 to Dyn.Int.length !seg_lo - 1 do
          let lo = Dyn.Int.get !seg_lo s and hi = Dyn.Int.get !seg_hi s in
          let p = ref lo in
          for v = 0 to dim - 1 do
            let start = !p in
            while !p < hi && coord_at !p = v do
              incr p
            done;
            Dyn.Int.push next_lo start;
            Dyn.Int.push next_hi !p
          done
        done
    | Level.Compressed ->
        let pos = Dyn.Int.create () and crd = Dyn.Int.create () in
        Dyn.Int.push pos 0;
        for s = 0 to Dyn.Int.length !seg_lo - 1 do
          let lo = Dyn.Int.get !seg_lo s and hi = Dyn.Int.get !seg_hi s in
          let p = ref lo in
          while !p < hi do
            let v = coord_at !p in
            let start = !p in
            while !p < hi && coord_at !p = v do
              incr p
            done;
            Dyn.Int.push crd v;
            Dyn.Int.push next_lo start;
            Dyn.Int.push next_hi !p
          done;
          Dyn.Int.push pos (Dyn.Int.length crd)
        done;
        levels.(l) <-
          Compressed_data { pos = Dyn.Int.to_array pos; crd = Dyn.Int.to_array crd });
    seg_lo := next_lo;
    seg_hi := next_hi
  done;
  let n_out = Dyn.Int.length !seg_lo in
  let out_vals = Array.make n_out 0. in
  for s = 0 to n_out - 1 do
    let lo = Dyn.Int.get !seg_lo s and hi = Dyn.Int.get !seg_hi s in
    let acc = ref 0. in
    for k = lo to hi - 1 do
      acc := !acc +. in_vals.(k)
    done;
    out_vals.(s) <- !acc
  done;
  { dims; format = fmt; levels; vals = out_vals }

let of_dense d fmt = pack (Coo.of_dense d) fmt

let zero dims fmt = pack (Coo.create dims) fmt

let of_csr ~rows ~cols pos crd vals =
  of_parts ~dims:[| rows; cols |] ~format:Format.csr
    ~levels:[| Dense_data { size = rows }; Compressed_data { pos; crd } |]
    ~vals

let get t coord =
  if Array.length coord <> order t then invalid_arg "Tensor.get: rank mismatch";
  let n = order t in
  let rec walk l pos =
    if l = n then t.vals.(pos)
    else
      let c = coord.(Format.mode_of_level t.format l) in
      match t.levels.(l) with
      | Dense_data { size } ->
          if c < 0 || c >= size then invalid_arg "Tensor.get: out of bounds";
          walk (l + 1) ((pos * size) + c)
      | Compressed_data { pos = pa; crd } -> (
          match Util.binary_search crd pa.(pos) pa.(pos + 1) c with
          | Some k -> walk (l + 1) k
          | None -> 0.)
  in
  walk 0 0

let iteri_stored f t =
  let n = order t in
  let coord = Array.make n 0 in
  let rec walk l pos =
    if l = n then f coord t.vals.(pos)
    else
      let mode = Format.mode_of_level t.format l in
      match t.levels.(l) with
      | Dense_data { size } ->
          for c = 0 to size - 1 do
            coord.(mode) <- c;
            walk (l + 1) ((pos * size) + c)
          done
      | Compressed_data { pos = pa; crd } ->
          for k = pa.(pos) to pa.(pos + 1) - 1 do
            coord.(mode) <- crd.(k);
            walk (l + 1) k
          done
  in
  walk 0 0

let nnz t =
  let count = ref 0 in
  Array.iter (fun v -> if v <> 0. then incr count) t.vals;
  !count

let to_dense t =
  let d = Dense.create t.dims in
  iteri_stored (fun coord v -> Dense.set d coord v) t;
  d

let csr_arrays t =
  if not (Format.equal t.format Format.csr) then
    invalid_arg "Tensor.csr_arrays: tensor is not CSR";
  match t.levels with
  | [| Dense_data _; Compressed_data { pos; crd } |] -> (pos, crd, t.vals)
  | _ -> invalid_arg "Tensor.csr_arrays: malformed CSR"

let repack t fmt =
  let coo = Coo.create t.dims in
  iteri_stored (fun coord v -> if v <> 0. then Coo.push coo coord v) t;
  pack coo fmt

let split_rows t ~parts =
  if parts <= 0 then invalid_arg "Tensor.split_rows: parts must be positive";
  let mode0 = Format.mode_of_level t.format 0 in
  let dim0 = t.dims.(mode0) in
  (* Balance by cumulative nonzero count along the level-0 coordinate. *)
  let counts = Array.make dim0 0 in
  iteri_stored (fun c v -> if v <> 0. then counts.(c.(mode0)) <- counts.(c.(mode0)) + 1) t;
  let total = Array.fold_left ( + ) 0 counts in
  let boundaries = Array.make (parts + 1) dim0 in
  boundaries.(0) <- 0;
  let acc = ref 0 and next = ref 1 in
  for r = 0 to dim0 - 1 do
    acc := !acc + counts.(r);
    while !next < parts && !acc * parts >= total * !next do
      boundaries.(!next) <- r + 1;
      incr next
    done
  done;
  for p = !next to parts - 1 do
    boundaries.(p) <- dim0
  done;
  let part_of = Array.make dim0 (parts - 1) in
  for p = 0 to parts - 1 do
    for r = boundaries.(p) to boundaries.(p + 1) - 1 do
      part_of.(r) <- p
    done
  done;
  let coos = Array.init parts (fun _ -> Coo.create t.dims) in
  iteri_stored
    (fun c v -> if v <> 0. then Coo.push coos.(part_of.(c.(mode0))) (Array.copy c) v)
    t;
  Array.to_list (Array.map (fun coo -> pack coo t.format) coos)

let equal ?(eps = 1e-9) a b =
  a.dims = b.dims && Dense.equal ~eps (to_dense a) (to_dense b)

let pp fmt t =
  Stdlib.Format.fprintf fmt "tensor[%s] %s (%d stored, %d nonzero)"
    (Util.string_of_list string_of_int "x" (Array.to_list t.dims))
    (Format.to_string t.format) (stored t) (nnz t)
