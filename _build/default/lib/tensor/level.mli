(** Per-mode storage level formats.

    The paper (like taco) composes tensor formats from one level format per
    mode: [Dense] stores every coordinate of the dimension implicitly,
    [Compressed] stores only the nonzero coordinates in [pos]/[crd] arrays
    (paper Fig. 1b). *)

type t = Dense | Compressed

val equal : t -> t -> bool

val to_string : t -> string

val pp : Stdlib.Format.formatter -> t -> unit
