(** Tensor storage formats: a level format per storage level plus a mode
    ordering.

    Storage level [l] stores logical mode [mode_order l]. CSR is
    [{Dense; Compressed}] with the identity ordering; CSC is the same
    levels with the modes swapped, i.e. stored column-major. *)

type t

(** [make levels ~mode_order] builds a format; [mode_order] must be a
    permutation of [0 .. order-1] and have the same length as [levels].
    Raises [Invalid_argument] otherwise. *)
val make : Level.t list -> mode_order:int list -> t

(** [of_levels levels] with the identity mode ordering. *)
val of_levels : Level.t list -> t

val order : t -> int

(** Level format of storage level [l]. *)
val level : t -> int -> Level.t

val levels : t -> Level.t list

(** Logical mode stored at storage level [l]. *)
val mode_of_level : t -> int -> int

(** Storage level at which logical mode [m] is stored. *)
val level_of_mode : t -> int -> int

val mode_order : t -> int list

(** True when every level is [Dense]. *)
val is_all_dense : t -> bool

(** True when every level is [Compressed]. *)
val is_all_compressed : t -> bool

val equal : t -> t -> bool

val to_string : t -> string

val pp : Stdlib.Format.formatter -> t -> unit

(** {2 Common formats} *)

(** Compressed sparse row: dense rows, compressed columns. *)
val csr : t

(** Compressed sparse column: CSR of the transpose. *)
val csc : t

(** Doubly compressed sparse row (both modes compressed). *)
val dcsr : t

(** Fully dense matrix. *)
val dense_matrix : t

(** Dense vector. *)
val dense_vector : t

(** Sparse (compressed) vector. *)
val sparse_vector : t

(** Compressed sparse fiber: all modes compressed, identity order. *)
val csf : int -> t

(** All-dense tensor of the given order. *)
val dense : int -> t
