(** Row-major dense n-dimensional arrays.

    The oracle representation used in tests to check sparse kernels and
    compiler output against straightforward dense math. *)

type t

(** [create dims] is a zero tensor; every dimension must be positive. *)
val create : int array -> t

val dims : t -> int array

val order : t -> int

(** Total number of components. *)
val size : t -> int

val get : t -> int array -> float

val set : t -> int array -> float -> unit

val add_at : t -> int array -> float -> unit

(** Underlying flat buffer (row-major). *)
val buffer : t -> float array

val of_buffer : int array -> float array -> t

(** [init dims f] fills from a coordinate function. *)
val init : int array -> (int array -> float) -> t

val fill : t -> float -> unit

val copy : t -> t

val iteri : (int array -> float -> unit) -> t -> unit

val nnz : t -> int

val equal : ?eps:float -> t -> t -> bool

(** Linear (flat, row-major) offset of a coordinate. *)
val offset : t -> int array -> int

val map2 : (float -> float -> float) -> t -> t -> t

val pp : Stdlib.Format.formatter -> t -> unit
