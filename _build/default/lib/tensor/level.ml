type t = Dense | Compressed

let equal a b =
  match (a, b) with
  | Dense, Dense | Compressed, Compressed -> true
  | Dense, Compressed | Compressed, Dense -> false

let to_string = function Dense -> "dense" | Compressed -> "compressed"

let pp fmt t = Stdlib.Format.pp_print_string fmt (to_string t)
