(** Synthetic stand-ins for the paper's Table I inputs.

    The SuiteSparse matrices and FROSTT tensors are not available offline,
    so each entry is replaced by a synthetic input with the same dimensions
    and nonzero count (optionally scaled down by [scale] to fit the bench
    budget: dimensions divide by [scale], nonzero counts by [scale^2] for
    matrices so density is preserved). The substitution is documented in
    DESIGN.md. *)

type matrix_entry = {
  id : int;
  name : string;
  domain : string;
  rows : int;
  cols : int;
  nnz : int;
}

type tensor_entry = {
  t_name : string;
  t_domain : string;
  t_dims : int array;
  t_nnz : int;
}

(** The eleven matrices of Table I, full published sizes. *)
val matrices : matrix_entry list

(** The three FROSTT tensors of Table I. [tensor_standins] below already
    reflects the memory-bounded scaling recorded in DESIGN.md. *)
val tensors : tensor_entry list

(** Scaled stand-in dimensions of a matrix entry. *)
val scaled_matrix_entry : scale:int -> matrix_entry -> matrix_entry

(** Generate the CSR stand-in for a (possibly scaled) matrix entry. The
    structure is a random band (FEM-like locality) topped up with uniform
    nonzeros to reach the target count. *)
val generate_matrix : seed:int -> scale:int -> matrix_entry -> Tensor.t

(** Stand-in order-3 tensors (already scaled to container memory;
    Facebook is full size). *)
val tensor_standins : tensor_entry list

val generate_tensor : seed:int -> tensor_entry -> Tensor.t

val density : matrix_entry -> float
