module Prng = Taco_support.Prng

type matrix_entry = {
  id : int;
  name : string;
  domain : string;
  rows : int;
  cols : int;
  nnz : int;
}

type tensor_entry = {
  t_name : string;
  t_domain : string;
  t_dims : int array;
  t_nnz : int;
}

let matrices =
  [
    { id = 0; name = "bcsstk17"; domain = "Structural"; rows = 10974; cols = 10974; nnz = 428_650 };
    { id = 1; name = "pdb1HYS"; domain = "Protein data base"; rows = 36417; cols = 36417; nnz = 4_344_765 };
    { id = 2; name = "rma10"; domain = "3D CFD"; rows = 46835; cols = 46835; nnz = 2_329_092 };
    { id = 3; name = "cant"; domain = "FEM/Cantilever"; rows = 62451; cols = 62451; nnz = 4_007_383 };
    { id = 4; name = "consph"; domain = "FEM/Spheres"; rows = 83334; cols = 83334; nnz = 6_010_480 };
    { id = 5; name = "cop20k"; domain = "FEM/Accelerator"; rows = 121192; cols = 121192; nnz = 2_624_331 };
    { id = 6; name = "shipsec1"; domain = "FEM"; rows = 140874; cols = 140874; nnz = 3_568_176 };
    { id = 7; name = "scircuit"; domain = "Circuit"; rows = 170998; cols = 170998; nnz = 958_936 };
    { id = 8; name = "mac-econ"; domain = "Economics"; rows = 206500; cols = 206500; nnz = 1_273_389 };
    { id = 9; name = "pwtk"; domain = "Wind tunnel"; rows = 217918; cols = 217918; nnz = 11_524_432 };
    { id = 10; name = "webbase-1M"; domain = "Web connectivity"; rows = 1_000_005; cols = 1_000_005; nnz = 3_105_536 };
  ]

let tensors =
  [
    { t_name = "Facebook"; t_domain = "Social Media"; t_dims = [| 1504; 42390; 39986 |]; t_nnz = 737_934 };
    { t_name = "NELL-2"; t_domain = "Machine learning"; t_dims = [| 12092; 9184; 28818 |]; t_nnz = 76_879_419 };
    { t_name = "NELL-1"; t_domain = "Machine learning"; t_dims = [| 2_902_330; 2_143_368; 25_495_389 |]; t_nnz = 143_599_552 };
  ]

let scaled_matrix_entry ~scale e =
  if scale <= 0 then invalid_arg "Suite.scaled_matrix_entry: scale must be positive";
  let rows = max 16 (e.rows / scale) and cols = max 16 (e.cols / scale) in
  let nnz = max 64 (e.nnz / (scale * scale)) in
  (* Never exceed what the scaled shape can hold. *)
  let nnz = min nnz (rows * cols / 2) in
  { e with rows; cols; nnz }

let density e = float_of_int e.nnz /. (float_of_int e.rows *. float_of_int e.cols)

let generate_matrix ~seed ~scale e =
  let e = scaled_matrix_entry ~scale e in
  let prng = Prng.create (seed + (31 * e.id)) in
  (* A banded core gives FEM-like row locality; uniform fill supplies the
     rest of the published nonzero count. *)
  let per_row = max 1 (e.nnz / e.rows) in
  let bandwidth = max 1 (per_row / 2) in
  let coo = Coo.create [| e.rows; e.cols |] in
  let placed = ref 0 in
  for i = 0 to e.rows - 1 do
    let lo = max 0 (i - bandwidth) and hi = min (e.cols - 1) (i + bandwidth) in
    let j = ref lo in
    while !j <= hi && !placed < e.nnz / 2 do
      if Prng.bool prng 0.5 then begin
        Coo.push coo [| i; !j |] (Prng.float prng);
        incr placed
      end;
      incr j
    done
  done;
  let remaining = e.nnz - !placed in
  if remaining > 0 then begin
    let uniform = Gen.random_coo prng ~dims:[| e.rows; e.cols |] ~nnz:remaining in
    Coo.iter (fun coord v -> Coo.push coo (Array.copy coord) v) uniform
  end;
  Tensor.pack coo Format.csr

(* Memory-bounded stand-ins: Facebook full size; NELL-2 dimensions / 4 and
   nonzeros / 64 (density preserved); NELL-1 dimensions / 100 and nonzeros
   / 100 (keeps its hyper-sparse, huge-mode character while fitting the
   container). Recorded in DESIGN.md / EXPERIMENTS.md. *)
let tensor_standins =
  [
    { t_name = "Facebook"; t_domain = "Social Media"; t_dims = [| 1504; 42390; 39986 |]; t_nnz = 737_934 };
    { t_name = "NELL-2"; t_domain = "Machine learning"; t_dims = [| 3023; 2296; 7205 |]; t_nnz = 1_201_240 };
    { t_name = "NELL-1"; t_domain = "Machine learning"; t_dims = [| 29024; 21434; 254954 |]; t_nnz = 1_435_995 };
  ]

(* Average (i,k)-fiber populations, chosen to reflect the published
   tensors' character: Facebook is hyper-sparse with near-singleton
   fibers (the paper finds merge MTTKRP faster there), the NELL tensors
   have well-populated fibers (where hoisting the D multiplication out of
   the fiber loop pays off). *)
let avg_fiber name =
  match name with "Facebook" -> 1.3 | "NELL-2" -> 10. | "NELL-1" -> 6. | _ -> 4.

let generate_tensor ~seed e =
  let prng = Prng.create (seed + Hashtbl.hash e.t_name) in
  Tensor.pack
    (Gen.clustered3 prng ~dims:e.t_dims ~nnz:e.t_nnz ~avg_fiber:(avg_fiber e.t_name))
    (Format.csf 3)
