type t = { levels : Level.t array; mode_order : int array }

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all
    (fun m ->
      if m < 0 || m >= n || seen.(m) then false
      else begin
        seen.(m) <- true;
        true
      end)
    a

let make levels ~mode_order =
  let levels = Array.of_list levels in
  let mode_order = Array.of_list mode_order in
  if Array.length levels <> Array.length mode_order then
    invalid_arg "Format.make: levels and mode_order lengths differ";
  if not (is_permutation mode_order) then
    invalid_arg "Format.make: mode_order is not a permutation";
  { levels; mode_order }

let of_levels levels =
  let n = List.length levels in
  make levels ~mode_order:(List.init n Fun.id)

let order t = Array.length t.levels

let level t l =
  if l < 0 || l >= order t then invalid_arg "Format.level";
  t.levels.(l)

let levels t = Array.to_list t.levels

let mode_of_level t l =
  if l < 0 || l >= order t then invalid_arg "Format.mode_of_level";
  t.mode_order.(l)

let level_of_mode t m =
  let rec go l =
    if l >= order t then invalid_arg "Format.level_of_mode"
    else if t.mode_order.(l) = m then l
    else go (l + 1)
  in
  go 0

let mode_order t = Array.to_list t.mode_order

let is_all_dense t = Array.for_all (Level.equal Level.Dense) t.levels

let is_all_compressed t = Array.for_all (Level.equal Level.Compressed) t.levels

let equal a b = a.levels = b.levels && a.mode_order = b.mode_order

let to_string t =
  let lvls =
    Taco_support.Util.string_of_list Level.to_string ", " (levels t)
  in
  let id_order = Array.to_list t.mode_order = List.init (order t) Fun.id in
  if id_order then Printf.sprintf "{%s}" lvls
  else
    Printf.sprintf "{%s; order %s}" lvls
      (Taco_support.Util.string_of_list string_of_int "," (mode_order t))

let pp fmt t = Stdlib.Format.pp_print_string fmt (to_string t)

let csr = of_levels [ Level.Dense; Level.Compressed ]

let csc = make [ Level.Dense; Level.Compressed ] ~mode_order:[ 1; 0 ]

let dcsr = of_levels [ Level.Compressed; Level.Compressed ]

let dense_matrix = of_levels [ Level.Dense; Level.Dense ]

let dense_vector = of_levels [ Level.Dense ]

let sparse_vector = of_levels [ Level.Compressed ]

let csf n = of_levels (List.init n (fun _ -> Level.Compressed))

let dense n = of_levels (List.init n (fun _ -> Level.Dense))
