(** Tensor file I/O.

    - Matrix Market coordinate format ([.mtx]) for matrices, the format
      SuiteSparse distributes — so real Table I inputs can be dropped in
      for the synthetic stand-ins when available.
    - The FROSTT text format ([.tns]) for higher-order tensors: one line
      per nonzero, 1-based coordinates followed by the value. *)

(** [read_matrix_market path] reads a real-valued coordinate-format
    matrix ([general] or [symmetric]) into a COO buffer. Pattern files
    read as 1.0 values. *)
val read_matrix_market : string -> (Coo.t, string) result

(** [write_matrix_market path t] writes the stored nonzeros in
    coordinate format ([general]). *)
val write_matrix_market : string -> Tensor.t -> unit

(** [read_frostt path ~dims] reads a FROSTT [.tns] file. When [dims] is
    omitted they are inferred as the per-mode coordinate maxima. *)
val read_frostt : ?dims:int array -> string -> (Coo.t, string) result

val write_frostt : string -> Tensor.t -> unit
