(** Packed sparse/dense tensors.

    A tensor stores its values in the hierarchical per-level scheme of the
    paper's Fig. 1b: each storage level is either dense (implicit
    coordinates) or compressed ([pos]/[crd] arrays). The value array holds
    one component per position of the last level. *)

type level_data =
  | Dense_data of { size : int }
      (** Implicit level: parent position [p] expands to child positions
          [p * size + c] for every coordinate [c]. *)
  | Compressed_data of { pos : int array; crd : int array }
      (** Children of parent position [p] occupy positions
          [pos.(p) .. pos.(p+1) - 1]; [crd] holds their coordinates. *)

type t

(** {2 Construction} *)

(** [pack coo format] sorts, deduplicates (summing) and packs a coordinate
    buffer. [format] must have the same order as [coo]. *)
val pack : Coo.t -> Format.t -> t

(** [of_dense d format] packs a dense oracle tensor. *)
val of_dense : Dense.t -> Format.t -> t

(** [zero dims format] is an empty tensor (no stored entries; dense levels
    still materialize). *)
val zero : int array -> Format.t -> t

(** Build directly from level data; validates invariants and raises
    [Invalid_argument] on malformed input. *)
val of_parts : dims:int array -> format:Format.t -> levels:level_data array -> vals:float array -> t

(** CSR convenience: [of_csr ~rows ~cols pos crd vals]. *)
val of_csr : rows:int -> cols:int -> int array -> int array -> float array -> t

(** {2 Observation} *)

val dims : t -> int array

val order : t -> int

val format : t -> Format.t

val level_data : t -> int -> level_data

val vals : t -> float array

(** Number of stored components (including stored zeros in dense levels). *)
val stored : t -> int

(** Number of stored components with a nonzero value. *)
val nnz : t -> int

(** Random access by logical coordinate; absent coordinates read as 0. *)
val get : t -> int array -> float

(** Iterate stored positions in storage order with logical coordinates. *)
val iteri_stored : (int array -> float -> unit) -> t -> unit

val to_dense : t -> Dense.t

(** [csr_arrays t] is [(pos, crd, vals)]; requires the CSR format. *)
val csr_arrays : t -> int array * int array * float array

(** Re-pack into another format (via coordinates). *)
val repack : t -> Format.t -> t

(** [split_rows t ~parts] partitions the stored nonzeros into [parts]
    tensors of the same dimensions and format, by contiguous ranges of
    the mode stored at level 0, balancing nonzero counts. Used for
    data-parallel execution of kernels that are linear in one operand
    (each domain computes a partial result over its row range). *)
val split_rows : t -> parts:int -> t list

(** Structural invariants: monotone [pos], sorted in-bounds [crd], value
    array sized to the last level. *)
val validate : t -> (unit, string) result

(** Logical equality up to [eps] (compares all coordinates). Intended for
    tests on small tensors. *)
val equal : ?eps:float -> t -> t -> bool

val pp : Stdlib.Format.formatter -> t -> unit
