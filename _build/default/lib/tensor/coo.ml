module Dyn = Taco_support.Dyn_array

type t = {
  dims : int array;
  coords : Dyn.Int.t array; (* one growable column per mode *)
  vals : Dyn.Float.t;
}

let create dims =
  if Array.exists (fun d -> d <= 0) dims then invalid_arg "Coo.create: non-positive dim";
  {
    dims = Array.copy dims;
    coords = Array.init (Array.length dims) (fun _ -> Dyn.Int.create ());
    vals = Dyn.Float.create ();
  }

let dims t = Array.copy t.dims

let order t = Array.length t.dims

let length t = Dyn.Float.length t.vals

let push t coord v =
  if Array.length coord <> order t then invalid_arg "Coo.push: rank mismatch";
  Array.iteri
    (fun m c ->
      if c < 0 || c >= t.dims.(m) then invalid_arg "Coo.push: coordinate out of bounds")
    coord;
  Array.iteri (fun m c -> Dyn.Int.push t.coords.(m) c) coord;
  Dyn.Float.push t.vals v

let entry t k = Array.map (fun col -> Dyn.Int.get col k) t.coords

let iter f t =
  for k = 0 to length t - 1 do
    f (entry t k) (Dyn.Float.get t.vals k)
  done

let sorted_unique ~perm t =
  let n = length t in
  if Array.length perm <> order t then invalid_arg "Coo.sorted_unique: bad perm";
  let idx = Array.init n Fun.id in
  let cols = Array.map (fun m -> Dyn.Int.unsafe_backing t.coords.(m)) perm in
  let compare_entries a b =
    let rec go l =
      if l = Array.length cols then 0
      else
        let c = compare cols.(l).(a) cols.(l).(b) in
        if c <> 0 then c else go (l + 1)
    in
    go 0
  in
  Array.sort compare_entries idx;
  (* Merge duplicates by summing their values. *)
  let coords = ref [] and vals = ref [] in
  let k = ref 0 in
  while !k < n do
    let first = idx.(!k) in
    let v = ref (Dyn.Float.get t.vals first) in
    incr k;
    while !k < n && compare_entries first idx.(!k) = 0 do
      v := !v +. Dyn.Float.get t.vals idx.(!k);
      incr k
    done;
    coords := entry t first :: !coords;
    vals := !v :: !vals
  done;
  (Array.of_list (List.rev !coords), Array.of_list (List.rev !vals))

let of_dense d =
  let t = create (Dense.dims d) in
  Dense.iteri (fun coord v -> if v <> 0. then push t (Array.copy coord) v) d;
  t

let to_dense t =
  let d = Dense.create t.dims in
  iter (fun coord v -> Dense.add_at d coord v) t;
  d
