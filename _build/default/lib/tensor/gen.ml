module Prng = Taco_support.Prng

let component_count dims =
  (* Detect overflow while multiplying dimensions. *)
  Array.fold_left
    (fun acc d ->
      match acc with
      | None -> None
      | Some p -> if p > max_int / d then None else Some (p * d))
    (Some 1) dims

let unflatten dims flat =
  let n = Array.length dims in
  let coord = Array.make n 0 in
  let rest = ref flat in
  for m = n - 1 downto 0 do
    coord.(m) <- !rest mod dims.(m);
    rest := !rest / dims.(m)
  done;
  coord

let random_coo prng ~dims ~nnz =
  let coo = Coo.create dims in
  (match component_count dims with
  | Some total when nnz <= total ->
      let flats = Prng.sample_without_replacement prng ~n:total ~k:nnz in
      Array.iter (fun flat -> Coo.push coo (unflatten dims flat) (Prng.float prng)) flats
  | Some _ -> invalid_arg "Gen.random_coo: nnz exceeds component count"
  | None ->
      (* Component count overflows; draw coordinates independently and
         reject duplicates. Collisions are vanishingly rare here. *)
      let seen = Hashtbl.create (2 * nnz) in
      let drawn = ref 0 in
      while !drawn < nnz do
        let coord = Array.map (fun d -> Prng.int prng d) dims in
        let key = Array.to_list coord in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          Coo.push coo coord (Prng.float prng);
          incr drawn
        end
      done);
  coo

let random prng ~dims ~nnz fmt = Tensor.pack (random_coo prng ~dims ~nnz) fmt

let random_density prng ~dims ~density fmt =
  let total =
    match component_count dims with
    | Some t -> float_of_int t
    | None -> Array.fold_left (fun acc d -> acc *. float_of_int d) 1. dims
  in
  let nnz = max 1 (int_of_float (density *. total)) in
  random prng ~dims ~nnz fmt

let random_dense prng dims = Dense.init dims (fun _ -> Prng.float prng)

let banded_matrix prng ~n ~bandwidth ~fill =
  let coo = Coo.create [| n; n |] in
  for i = 0 to n - 1 do
    let lo = max 0 (i - bandwidth) and hi = min (n - 1) (i + bandwidth) in
    for j = lo to hi do
      if i = j || Prng.bool prng fill then
        Coo.push coo [| i; j |] (Prng.float prng)
    done
  done;
  Tensor.pack coo Format.csr

let clustered3 prng ~dims ~nnz ~avg_fiber =
  if Array.length dims <> 3 then invalid_arg "Gen.clustered3: order-3 only";
  if avg_fiber < 1. then invalid_arg "Gen.clustered3: avg_fiber < 1";
  let coo = Coo.create dims in
  let placed = ref 0 in
  while !placed < nnz do
    let i = Prng.int prng dims.(0) and k = Prng.int prng dims.(1) in
    (* Fiber lengths uniform in [1, 2*avg-1], mean = avg. *)
    let len = 1 + Prng.int prng (max 1 ((2 * int_of_float avg_fiber) - 1)) in
    let len = min len (min dims.(2) (nnz - !placed)) in
    let ls = Prng.sample_without_replacement prng ~n:dims.(2) ~k:len in
    Array.iter
      (fun l ->
        Coo.push coo [| i; k; l |] (Prng.float prng);
        incr placed)
      ls
  done;
  coo
