open Build
open Taco_lower
module TV = Taco_ir.Var.Tensor_var
module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense

let a_var = TV.make "A" ~order:2 ~format:F.dense_matrix

let b_var = TV.make "B" ~order:3 ~format:(F.csf 3)

let c_var = TV.make "C" ~order:2 ~format:F.dense_matrix

let d_var = TV.make "D" ~order:2 ~format:F.dense_matrix

let params =
  [
    p_int "A1_dimension";
    p_int "A2_dimension";
    p_farr ~output:true "A_vals";
    p_int "B1_dimension";
    p_iarr "B1_pos";
    p_iarr "B1_crd";
    p_int "B2_dimension";
    p_iarr "B2_pos";
    p_iarr "B2_crd";
    p_int "B3_dimension";
    p_iarr "B3_pos";
    p_iarr "B3_crd";
    p_farr "B_vals";
    p_int "C1_dimension";
    p_int "C2_dimension";
    p_farr "C_vals";
    p_int "D1_dimension";
    p_int "D2_dimension";
    p_farr "D_vals";
  ]

(* SPLATT-style: accumulate the fiber's B·C partial products into a row
   workspace, then multiply by D once per (i,k) — the structure of the
   paper's Fig. 9. *)
let splatt_like =
  let body =
    [
      Imp.Memset ("A_vals", v "A1_dimension" *: v "A2_dimension");
      Imp.Alloc (Imp.Float, "w_vals", v "A2_dimension");
      for_ "pB1" (idx "B1_pos" (i 0)) (idx "B1_pos" (i 1))
        [
          decl_int "i" (idx "B1_crd" (v "pB1"));
          for_ "pB2" (idx "B2_pos" (v "pB1")) (idx "B2_pos" (v "pB1" +: i 1))
            [
              decl_int "k" (idx "B2_crd" (v "pB2"));
              for_ "pB3" (idx "B3_pos" (v "pB2")) (idx "B3_pos" (v "pB2" +: i 1))
                [
                  decl_int "l" (idx "B3_crd" (v "pB3"));
                  for_ "j" (i 0) (v "A2_dimension")
                    [
                      store_add "w_vals" (v "j")
                        (idx "B_vals" (v "pB3")
                        *: idx "C_vals" ((v "l" *: v "C2_dimension") +: v "j"));
                    ];
                ];
              for_ "j" (i 0) (v "A2_dimension")
                [
                  store_add "A_vals"
                    ((v "i" *: v "A2_dimension") +: v "j")
                    (idx "w_vals" (v "j")
                    *: idx "D_vals" ((v "k" *: v "D2_dimension") +: v "j"));
                  store "w_vals" (v "j") (f 0.);
                ];
            ];
        ];
    ]
  in
  info ~mode:Lower.Compute ~result:a_var ~inputs:[ b_var; c_var; d_var ]
    { Imp.k_name = "mttkrp_splatt_like"; k_params = params; k_body = body }

let reference b c d =
  let dims = T.dims b in
  let jdim = (D.dims c).(1) in
  if (D.dims c).(0) <> dims.(2) || (D.dims d).(0) <> dims.(1) || (D.dims d).(1) <> jdim
  then invalid_arg "Mttkrp.reference: shape mismatch";
  let a = D.create [| dims.(0); jdim |] in
  T.iteri_stored
    (fun coord value ->
      if value <> 0. then begin
        let bi = coord.(0) and bk = coord.(1) and bl = coord.(2) in
        for j = 0 to jdim - 1 do
          D.add_at a [| bi; j |] (value *. D.get c [| bl; j |] *. D.get d [| bk; j |])
        done
      end)
    b;
  a
