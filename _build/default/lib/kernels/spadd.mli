(** Sparse matrix addition baselines (paper §VIII-E, Fig. 13).

    Libraries add two operands at a time; chained additions build
    intermediate temporaries. Both baselines are pairwise [A = B + C]
    CSR kernels in imperative IR:

    - {!eigen_like}: single-pass two-way merge with geometric result
      growth (Eigen-style; the paper finds Eigen competitive with taco's
      pairwise code);
    - {!mkl_like}: two-pass inspector-executor (symbolic row sizing, then
      a numeric merge), modeling MKL's sparse add — the double merge is
      its measured ≈2.8× disadvantage.

    {!merge_add} is the plain-OCaml oracle. *)

val a_var : Taco_ir.Var.Tensor_var.t

val b_var : Taco_ir.Var.Tensor_var.t

val c_var : Taco_ir.Var.Tensor_var.t

val eigen_like : Taco_lower.Lower.kernel_info

val mkl_like : Taco_lower.Lower.kernel_info

(** Reference CSR addition in plain OCaml (sorted two-way merge). *)
val merge_add : Taco_tensor.Tensor.t -> Taco_tensor.Tensor.t -> Taco_tensor.Tensor.t
