(** MTTKRP baselines (paper §VII, §VIII-C).

    {!splatt_like} hand-writes the SPLATT library's loop structure in
    imperative IR: the partial product [B(i,k,:)·C] accumulates into a
    dense row workspace hoisted out of the fiber loop, exactly the code
    the paper's first workspace transformation recreates (Fig. 9).

    [A(i,j) = Σ_{k,l} B(i,k,l) · C(l,j) · D(k,j)] with a CSF tensor [B]
    and dense matrices [A], [C], [D].

    {!reference} is a plain-OCaml oracle over the packed CSF tensor. *)

val a_var : Taco_ir.Var.Tensor_var.t

val b_var : Taco_ir.Var.Tensor_var.t

val c_var : Taco_ir.Var.Tensor_var.t

val d_var : Taco_ir.Var.Tensor_var.t

val splatt_like : Taco_lower.Lower.kernel_info

(** [reference b c d] computes MTTKRP with dense output in plain OCaml. *)
val reference :
  Taco_tensor.Tensor.t -> Taco_tensor.Dense.t -> Taco_tensor.Dense.t -> Taco_tensor.Dense.t
