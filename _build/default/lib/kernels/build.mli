(** Helpers for hand-writing imperative-IR kernels (the library baselines
    that stand in for Eigen, Intel MKL and SPLATT).

    All baselines are expressed in the same imperative IR as generated
    code and run through the same executor, so benchmark comparisons
    measure algorithm structure, not host-language overhead. *)

open Taco_lower

(** Expression shorthand. *)

val v : string -> Imp.expr

val i : int -> Imp.expr

val f : float -> Imp.expr

val ( +: ) : Imp.expr -> Imp.expr -> Imp.expr

val ( -: ) : Imp.expr -> Imp.expr -> Imp.expr

val ( *: ) : Imp.expr -> Imp.expr -> Imp.expr

val ( <: ) : Imp.expr -> Imp.expr -> Imp.expr

val ( >=: ) : Imp.expr -> Imp.expr -> Imp.expr

val ( =: ) : Imp.expr -> Imp.expr -> Imp.expr

val ( &&: ) : Imp.expr -> Imp.expr -> Imp.expr

val idx : string -> Imp.expr -> Imp.expr

(** Statement shorthand. *)

val decl_int : string -> Imp.expr -> Imp.stmt

val decl_bool : string -> Imp.expr -> Imp.stmt

val set : string -> Imp.expr -> Imp.stmt

val store : string -> Imp.expr -> Imp.expr -> Imp.stmt

val store_add : string -> Imp.expr -> Imp.expr -> Imp.stmt

val for_ : string -> Imp.expr -> Imp.expr -> Imp.stmt list -> Imp.stmt

val while_ : Imp.expr -> Imp.stmt list -> Imp.stmt

val if_ : Imp.expr -> Imp.stmt list -> Imp.stmt

val if_else : Imp.expr -> Imp.stmt list -> Imp.stmt list -> Imp.stmt

val incr : string -> Imp.stmt

(** Parameter shorthand. *)

val p_int : string -> Imp.param

val p_iarr : ?output:bool -> string -> Imp.param

val p_farr : ?output:bool -> string -> Imp.param

(** CSR parameter block for tensor name [t]: [t1_dimension, t2_dimension,
    t2_pos, t2_crd, t_vals]. *)
val csr_params : ?output:bool -> string -> Imp.param list

(** Wrap a hand-written kernel as a {!Lower.kernel_info} so the standard
    runner applies. [result]/[inputs] must use naming consistent with the
    kernel's parameters. *)
val info :
  mode:Lower.mode ->
  result:Taco_ir.Var.Tensor_var.t ->
  inputs:Taco_ir.Var.Tensor_var.t list ->
  Imp.kernel ->
  Lower.kernel_info
