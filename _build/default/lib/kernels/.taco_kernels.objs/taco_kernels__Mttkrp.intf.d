lib/kernels/mttkrp.mli: Taco_ir Taco_lower Taco_tensor
