lib/kernels/build.mli: Imp Lower Taco_ir Taco_lower
