lib/kernels/spadd.mli: Taco_ir Taco_lower Taco_tensor
