lib/kernels/spgemm.mli: Taco_ir Taco_lower Taco_tensor
