lib/kernels/build.ml: Imp Lower Printf Taco_lower
