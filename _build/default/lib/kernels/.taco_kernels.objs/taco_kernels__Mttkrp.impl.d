lib/kernels/mttkrp.ml: Array Build Imp Lower Taco_ir Taco_lower Taco_tensor
