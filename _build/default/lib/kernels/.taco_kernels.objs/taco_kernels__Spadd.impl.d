lib/kernels/spadd.ml: Array Build Imp Lower Stdlib Taco_ir Taco_lower Taco_support Taco_tensor
