open Build
open Taco_lower
module TV = Taco_ir.Var.Tensor_var
module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module Dyn = Taco_support.Dyn_array

let a_var = TV.make "A" ~order:2 ~format:F.csr

let b_var = TV.make "B" ~order:2 ~format:F.csr

let c_var = TV.make "C" ~order:2 ~format:F.csr

let params =
  [ p_int "A1_dimension"; p_int "A2_dimension" ] @ csr_params "B" @ csr_params "C"

(* Shared multiply-row phase: scatter row i of B·C into w_vals. *)
let scatter_row ?(track = false) ?(values = true) () =
  let mark =
    if track then
      [
        if_
          (Imp.Not (idx "w_mask" (v "j")))
          [ store "w_mask" (v "j") (Imp.Bool_lit true); store "w_list" (v "w_list_size") (v "j"); incr "w_list_size" ];
      ]
    else [ store "w_mask" (v "j") (Imp.Bool_lit true) ]
  in
  for_ "pB2" (idx "B2_pos" (v "i")) (idx "B2_pos" (v "i" +: i 1))
    [
      decl_int "k" (idx "B2_crd" (v "pB2"));
      for_ "pC2" (idx "C2_pos" (v "k")) (idx "C2_pos" (v "k" +: i 1))
        ([ decl_int "j" (idx "C2_crd" (v "pC2")) ]
        @ mark
        @
        if values then
          [ store_add "w_vals" (v "j") (idx "B_vals" (v "pB2") *: idx "C_vals" (v "pC2")) ]
        else []);
    ]

(* Eigen-style: the product is evaluated into an unsorted row-major
   temporary, then converted to the destination through transposition
   (Eigen materializes sparse products in the opposite storage order and
   converts; the two conversion passes are what sorts the coordinates and
   what costs extra relative to the direct Gustavson gather). *)
let eigen_like =
  let grow_tmp =
    if_
      (v "pT2" >=: v "tmp_cap")
      [
        set "tmp_cap" (v "tmp_cap" *: i 2);
        Imp.Realloc ("tmp_crd", v "tmp_cap");
        Imp.Realloc ("tmp_vals", v "tmp_cap");
      ]
  in
  let body =
    [
      (* Pass 1: Gustavson with an unsorted gather into a temporary. *)
      Imp.Alloc (Imp.Int, "tmp_pos", v "A1_dimension" +: i 1);
      store "tmp_pos" (i 0) (i 0);
      decl_int "tmp_cap" (i 1024);
      Imp.Alloc (Imp.Int, "tmp_crd", v "tmp_cap");
      Imp.Alloc (Imp.Float, "tmp_vals", v "tmp_cap");
      Imp.Alloc (Imp.Float, "w_vals", v "A2_dimension");
      Imp.Alloc (Imp.Bool, "w_mask", v "A2_dimension");
      Imp.Alloc (Imp.Int, "w_list", v "A2_dimension");
      decl_int "w_list_size" (i 0);
      decl_int "pT2" (i 0);
      for_ "i" (i 0) (v "A1_dimension")
        [
          set "w_list_size" (i 0);
          scatter_row ~track:true ();
          for_ "q" (i 0) (v "w_list_size")
            [
              decl_int "j" (idx "w_list" (v "q"));
              grow_tmp;
              store "tmp_crd" (v "pT2") (v "j");
              store "tmp_vals" (v "pT2") (idx "w_vals" (v "j"));
              incr "pT2";
              store "w_vals" (v "j") (f 0.);
              store "w_mask" (v "j") (Imp.Bool_lit false);
            ];
          store "tmp_pos" (v "i" +: i 1) (v "pT2");
        ];
      decl_int "nnz" (idx "tmp_pos" (v "A1_dimension"));
      (* Pass 2: convert to column-major (counting sort by column). *)
      Imp.Alloc (Imp.Int, "col_pos", v "A2_dimension" +: i 1);
      Imp.Alloc (Imp.Int, "col_cur", v "A2_dimension");
      Imp.Alloc (Imp.Int, "cs_row", Imp.add (v "nnz") (i 1));
      Imp.Alloc (Imp.Float, "cs_vals", Imp.add (v "nnz") (i 1));
      for_ "p" (i 0) (v "nnz")
        [ store_add "col_pos" (idx "tmp_crd" (v "p") +: i 1) (i 1) ];
      for_ "jcol" (i 0) (v "A2_dimension")
        [
          store_add "col_pos" (v "jcol" +: i 1) (idx "col_pos" (v "jcol"));
          store "col_cur" (v "jcol") (idx "col_pos" (v "jcol"));
        ];
      for_ "i" (i 0) (v "A1_dimension")
        [
          for_ "p" (idx "tmp_pos" (v "i")) (idx "tmp_pos" (v "i" +: i 1))
            [
              decl_int "jcol" (idx "tmp_crd" (v "p"));
              decl_int "q" (idx "col_cur" (v "jcol"));
              store "cs_row" (v "q") (v "i");
              store "cs_vals" (v "q") (idx "tmp_vals" (v "p"));
              store "col_cur" (v "jcol") (v "q" +: i 1);
            ];
        ];
      (* Pass 3: convert back to row-major; rows come out sorted. *)
      Imp.Alloc (Imp.Int, "A2_pos", v "A1_dimension" +: i 1);
      Imp.Alloc (Imp.Int, "row_cur", v "A1_dimension");
      Imp.Alloc (Imp.Int, "A2_crd", Imp.add (v "nnz") (i 1));
      Imp.Alloc (Imp.Float, "A_vals", Imp.add (v "nnz") (i 1));
      for_ "p" (i 0) (v "nnz") [ store_add "A2_pos" (idx "cs_row" (v "p") +: i 1) (i 1) ];
      for_ "i" (i 0) (v "A1_dimension")
        [
          store_add "A2_pos" (v "i" +: i 1) (idx "A2_pos" (v "i"));
          store "row_cur" (v "i") (idx "A2_pos" (v "i"));
        ];
      for_ "jcol" (i 0) (v "A2_dimension")
        [
          for_ "p" (idx "col_pos" (v "jcol")) (idx "col_pos" (v "jcol" +: i 1))
            [
              decl_int "r" (idx "cs_row" (v "p"));
              decl_int "q" (idx "row_cur" (v "r"));
              store "A2_crd" (v "q") (v "jcol");
              store "A_vals" (v "q") (idx "cs_vals" (v "p"));
              store "row_cur" (v "r") (v "q" +: i 1);
            ];
        ];
    ]
  in
  info
    ~mode:(Lower.Assemble { emit_values = true; sorted = true })
    ~result:a_var ~inputs:[ b_var; c_var ]
    { Imp.k_name = "spgemm_eigen_like"; k_params = params; k_body = body }

(* MKL-style inspector-executor: a symbolic pass sizes rows exactly, a
   numeric pass fills unsorted values. *)
let mkl_like =
  let reset_tracking =
    for_ "q" (i 0) (v "w_list_size")
      [ store "w_mask" (idx "w_list" (v "q")) (Imp.Bool_lit false) ]
  in
  let body =
    [
      Imp.Alloc (Imp.Int, "A2_pos", v "A1_dimension" +: i 1);
      store "A2_pos" (i 0) (i 0);
      Imp.Alloc (Imp.Float, "w_vals", v "A2_dimension");
      Imp.Alloc (Imp.Bool, "w_mask", v "A2_dimension");
      Imp.Alloc (Imp.Int, "w_list", v "A2_dimension");
      decl_int "w_list_size" (i 0);
      (* Symbolic pass: structure only. *)
      for_ "i" (i 0) (v "A1_dimension")
        [
          set "w_list_size" (i 0);
          scatter_row ~track:true ~values:false ();
          reset_tracking;
          store "A2_pos" (v "i" +: i 1) (idx "A2_pos" (v "i") +: v "w_list_size");
        ];
      (* Exact allocation. *)
      Imp.Alloc (Imp.Int, "A2_crd", idx "A2_pos" (v "A1_dimension") +: i 1);
      Imp.Alloc (Imp.Float, "A_vals", idx "A2_pos" (v "A1_dimension") +: i 1);
      (* Numeric pass: recompute and gather, unsorted. *)
      for_ "i" (i 0) (v "A1_dimension")
        [
          set "w_list_size" (i 0);
          scatter_row ~track:true ~values:true ();
          decl_int "pA2" (idx "A2_pos" (v "i"));
          for_ "q" (i 0) (v "w_list_size")
            [
              decl_int "j" (idx "w_list" (v "q"));
              store "A2_crd" (v "pA2" +: v "q") (v "j");
              store "A_vals" (v "pA2" +: v "q") (idx "w_vals" (v "j"));
              store "w_vals" (v "j") (f 0.);
              store "w_mask" (v "j") (Imp.Bool_lit false);
            ];
        ];
    ]
  in
  info
    ~mode:(Lower.Assemble { emit_values = true; sorted = false })
    ~result:a_var ~inputs:[ b_var; c_var ]
    { Imp.k_name = "spgemm_mkl_like"; k_params = params; k_body = body }

(* Plain OCaml Gustavson, sorted: the oracle used by the tests. *)
let gustavson b c =
  let bdims = T.dims b and cdims = T.dims c in
  if bdims.(1) <> cdims.(0) then invalid_arg "Spgemm.gustavson: inner dimensions differ";
  let m = bdims.(0) and n = cdims.(1) in
  let b_pos, b_crd, b_vals = T.csr_arrays b in
  let c_pos, c_crd, c_vals = T.csr_arrays c in
  let w = Array.make n 0. in
  let mask = Array.make n false in
  let rowlist = Array.make n 0 in
  let pos = Array.make (m + 1) 0 in
  let crd = Dyn.Int.create () in
  let vals = Dyn.Float.create () in
  for row = 0 to m - 1 do
    let cnt = ref 0 in
    for pb = b_pos.(row) to b_pos.(row + 1) - 1 do
      let k = b_crd.(pb) in
      for pc = c_pos.(k) to c_pos.(k + 1) - 1 do
        let j = c_crd.(pc) in
        if not mask.(j) then begin
          mask.(j) <- true;
          rowlist.(!cnt) <- j;
          Stdlib.incr cnt
        end;
        w.(j) <- w.(j) +. (b_vals.(pb) *. c_vals.(pc))
      done
    done;
    let live = Array.sub rowlist 0 !cnt in
    Array.sort compare live;
    Array.iter
      (fun j ->
        Dyn.Int.push crd j;
        Dyn.Float.push vals w.(j);
        w.(j) <- 0.;
        mask.(j) <- false)
      live;
    pos.(row + 1) <- Dyn.Int.length crd
  done;
  T.of_csr ~rows:m ~cols:n pos (Dyn.Int.to_array crd) (Dyn.Float.to_array vals)

(* Hash-map workspace: open addressing with linear probing; keys stored
   as j+1 so 0 means empty; cleared through the coordinate list after
   each row. *)
let hash_workspace ~capacity =
  if capacity land (capacity - 1) <> 0 then
    invalid_arg "Spgemm.hash_workspace: capacity must be a power of two";
  let cap = i capacity in
  (* slot = j mod capacity, then linear probing. *)
  let probe ~slot_var j body_when_found =
    [
      decl_int slot_var (j -: (Imp.Binop (Imp.Div, j, cap) *: cap));
      while_
        (Imp.Not
           (Imp.Binop
              ( Imp.Or,
                idx "h_keys" (v slot_var) =: i 0,
                idx "h_keys" (v slot_var) =: (j +: i 1) )))
        [
          set slot_var (v slot_var +: i 1);
          if_ (v slot_var >=: cap) [ set slot_var (i 0) ];
        ];
    ]
    @ body_when_found
  in
  let grow =
    if_
      (v "pA2" >=: v "A2_cap")
      [
        set "A2_cap" (v "A2_cap" *: i 2);
        Imp.Realloc ("A2_crd", v "A2_cap");
        Imp.Realloc ("A_vals", v "A2_cap");
      ]
  in
  let body =
    [
      Imp.Alloc (Imp.Int, "A2_pos", v "A1_dimension" +: i 1);
      store "A2_pos" (i 0) (i 0);
      decl_int "A2_cap" (i 1024);
      Imp.Alloc (Imp.Int, "A2_crd", v "A2_cap");
      Imp.Alloc (Imp.Float, "A_vals", v "A2_cap");
      Imp.Alloc (Imp.Int, "h_keys", cap);
      Imp.Alloc (Imp.Float, "h_vals", cap);
      Imp.Alloc (Imp.Int, "w_list", cap);
      decl_int "w_list_size" (i 0);
      decl_int "pA2" (i 0);
      for_ "i" (i 0) (v "A1_dimension")
        [
          set "w_list_size" (i 0);
          for_ "pB2" (idx "B2_pos" (v "i")) (idx "B2_pos" (v "i" +: i 1))
            [
              decl_int "k" (idx "B2_crd" (v "pB2"));
              for_ "pC2" (idx "C2_pos" (v "k")) (idx "C2_pos" (v "k" +: i 1))
                ([ decl_int "j" (idx "C2_crd" (v "pC2")) ]
                @ probe ~slot_var:"slot" (v "j")
                    [
                      if_
                        (idx "h_keys" (v "slot") =: i 0)
                        [
                          store "h_keys" (v "slot") (v "j" +: i 1);
                          store "w_list" (v "w_list_size") (v "j");
                          incr "w_list_size";
                        ];
                      store_add "h_vals" (v "slot")
                        (idx "B_vals" (v "pB2") *: idx "C_vals" (v "pC2"));
                    ]);
            ];
          Imp.Sort ("w_list", i 0, v "w_list_size");
          for_ "q" (i 0) (v "w_list_size")
            ([ decl_int "j" (idx "w_list" (v "q")) ]
            @ probe ~slot_var:"slot" (v "j")
                [
                  grow;
                  store "A2_crd" (v "pA2") (v "j");
                  store "A_vals" (v "pA2") (idx "h_vals" (v "slot"));
                  incr "pA2";
                  store "h_keys" (v "slot") (i 0);
                  store "h_vals" (v "slot") (f 0.);
                ]);
          store "A2_pos" (v "i" +: i 1) (v "pA2");
        ];
    ]
  in
  info
    ~mode:(Lower.Assemble { emit_values = true; sorted = true })
    ~result:a_var ~inputs:[ b_var; c_var ]
    { Imp.k_name = "spgemm_hash_workspace"; k_params = params; k_body = body }
