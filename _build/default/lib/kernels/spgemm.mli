(** Sparse matrix-matrix multiplication baselines (paper §VIII-B).

    Two hand-written imperative-IR kernels model the libraries the paper
    compares against, each implementing Gustavson's linear-combination-of-
    rows algorithm [Gustavson 1978] with a dense workspace:

    - {!eigen_like}: sorted output. Models Eigen's AmbiVector strategy:
      dense accumulation with coordinate collection, a per-row sort, and
      a drain through a temporary buffer before insertBack-style appends —
      the double-buffering and sorting are the constant-factor
      disadvantage the paper measures (≈4×).
    - {!mkl_like}: unsorted output. Models MKL's two-stage
      inspector-executor [mkl_sparse_spmm]: a symbolic pass sizes each
      row exactly, then a numeric pass fills values; the double traversal
      is its constant-factor cost (paper measures taco 1.16–1.28× faster).

    {!gustavson} is a direct OCaml implementation used as the oracle in
    tests. *)

(** Imperative-IR kernel [A = B·C], all CSR, fused assembly, sorted. *)
val eigen_like : Taco_lower.Lower.kernel_info

(** Imperative-IR kernel [A = B·C], all CSR, two-pass, unsorted. *)
val mkl_like : Taco_lower.Lower.kernel_info

(** Tensor variables the two kernels are written against. *)
val a_var : Taco_ir.Var.Tensor_var.t

val b_var : Taco_ir.Var.Tensor_var.t

val c_var : Taco_ir.Var.Tensor_var.t

(** Reference CSR SpGEMM in plain OCaml (Gustavson, sorted). *)
val gustavson : Taco_tensor.Tensor.t -> Taco_tensor.Tensor.t -> Taco_tensor.Tensor.t

(** Ablation: Gustavson SpGEMM with an open-addressing hash-map workspace
    instead of the dense array (the alternative §III mentions; Patwary et
    al., cited by the paper, report it underperforms — this kernel lets
    the benchmark confirm that). Capacity is fixed per kernel; rows must
    stay below half the capacity. *)
val hash_workspace : capacity:int -> Taco_lower.Lower.kernel_info
