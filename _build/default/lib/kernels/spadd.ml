open Build
open Taco_lower
module TV = Taco_ir.Var.Tensor_var
module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module Dyn = Taco_support.Dyn_array

let a_var = TV.make "A" ~order:2 ~format:F.csr

let b_var = TV.make "B" ~order:2 ~format:F.csr

let c_var = TV.make "C" ~order:2 ~format:F.csr

let params =
  [ p_int "A1_dimension"; p_int "A2_dimension" ] @ csr_params "B" @ csr_params "C"

let b_end = idx "B2_pos" (v "i" +: i 1)

let c_end = idx "C2_pos" (v "i" +: i 1)

(* Two-way merge of row i; [emit j value] produces the output action. *)
let merge_row emit =
  [
    set "pB2" (idx "B2_pos" (v "i"));
    set "pC2" (idx "C2_pos" (v "i"));
    while_
      ((v "pB2" <: b_end) &&: (v "pC2" <: c_end))
      ([
         decl_int "jB" (idx "B2_crd" (v "pB2"));
         decl_int "jC" (idx "C2_crd" (v "pC2"));
         decl_int "j" (Imp.Binop (Imp.Min, v "jB", v "jC"));
       ]
      @ [
          if_else
            ((v "jB" =: v "j") &&: (v "jC" =: v "j"))
            (emit (v "j") (idx "B_vals" (v "pB2") +: idx "C_vals" (v "pC2")))
            [
              if_else (v "jB" =: v "j")
                (emit (v "j") (idx "B_vals" (v "pB2")))
                (emit (v "j") (idx "C_vals" (v "pC2")));
            ];
          if_ (v "jB" =: v "j") [ incr "pB2" ];
          if_ (v "jC" =: v "j") [ incr "pC2" ];
        ]);
    while_ (v "pB2" <: b_end)
      (decl_int "j" (idx "B2_crd" (v "pB2")) :: emit (v "j") (idx "B_vals" (v "pB2"))
      @ [ incr "pB2" ]);
    while_ (v "pC2" <: c_end)
      (decl_int "j" (idx "C2_crd" (v "pC2")) :: emit (v "j") (idx "C_vals" (v "pC2"))
      @ [ incr "pC2" ]);
  ]

let grow =
  if_
    (v "pA2" >=: v "A2_cap")
    [
      set "A2_cap" (v "A2_cap" *: i 2);
      Imp.Realloc ("A2_crd", v "A2_cap");
      Imp.Realloc ("A_vals", v "A2_cap");
    ]

(* Single-pass merge with geometric growth (Eigen-style). *)
let eigen_like =
  let emit j value =
    [ grow; store "A2_crd" (v "pA2") j; store "A_vals" (v "pA2") value; incr "pA2" ]
  in
  let body =
    [
      Imp.Alloc (Imp.Int, "A2_pos", v "A1_dimension" +: i 1);
      store "A2_pos" (i 0) (i 0);
      decl_int "A2_cap" (i 1024);
      Imp.Alloc (Imp.Int, "A2_crd", v "A2_cap");
      Imp.Alloc (Imp.Float, "A_vals", v "A2_cap");
      decl_int "pA2" (i 0);
      decl_int "pB2" (i 0);
      decl_int "pC2" (i 0);
      for_ "i" (i 0) (v "A1_dimension")
        (merge_row emit @ [ store "A2_pos" (v "i" +: i 1) (v "pA2") ]);
    ]
  in
  info
    ~mode:(Lower.Assemble { emit_values = true; sorted = true })
    ~result:a_var ~inputs:[ b_var; c_var ]
    { Imp.k_name = "spadd_eigen_like"; k_params = params; k_body = body }

(* Two-pass inspector-executor (MKL-style): a symbolic merge counts each
   row, then a numeric merge fills exactly-sized arrays. *)
let mkl_like =
  let count _j _value = [ incr "row_nnz" ] in
  let emit j value =
    [ store "A2_crd" (v "pA2") j; store "A_vals" (v "pA2") value; incr "pA2" ]
  in
  let body =
    [
      Imp.Alloc (Imp.Int, "A2_pos", v "A1_dimension" +: i 1);
      store "A2_pos" (i 0) (i 0);
      decl_int "pB2" (i 0);
      decl_int "pC2" (i 0);
      decl_int "row_nnz" (i 0);
      for_ "i" (i 0) (v "A1_dimension")
        ([ set "row_nnz" (i 0) ]
        @ merge_row count
        @ [ store "A2_pos" (v "i" +: i 1) (idx "A2_pos" (v "i") +: v "row_nnz") ]);
      Imp.Alloc (Imp.Int, "A2_crd", idx "A2_pos" (v "A1_dimension") +: i 1);
      Imp.Alloc (Imp.Float, "A_vals", idx "A2_pos" (v "A1_dimension") +: i 1);
      decl_int "pA2" (i 0);
      for_ "i" (i 0) (v "A1_dimension") (merge_row emit);
    ]
  in
  info
    ~mode:(Lower.Assemble { emit_values = true; sorted = true })
    ~result:a_var ~inputs:[ b_var; c_var ]
    { Imp.k_name = "spadd_mkl_like"; k_params = params; k_body = body }

(* Plain OCaml sorted merge: the oracle used by the tests. *)
let merge_add b c =
  let bdims = T.dims b and cdims = T.dims c in
  if bdims <> cdims then invalid_arg "Spadd.merge_add: shape mismatch";
  let m = bdims.(0) and n = bdims.(1) in
  let b_pos, b_crd, b_vals = T.csr_arrays b in
  let c_pos, c_crd, c_vals = T.csr_arrays c in
  let pos = Array.make (m + 1) 0 in
  let crd = Dyn.Int.create () in
  let vals = Dyn.Float.create () in
  for row = 0 to m - 1 do
    let pb = ref b_pos.(row) and pc = ref c_pos.(row) in
    let push j x =
      Dyn.Int.push crd j;
      Dyn.Float.push vals x
    in
    while !pb < b_pos.(row + 1) && !pc < c_pos.(row + 1) do
      let jb = b_crd.(!pb) and jc = c_crd.(!pc) in
      if jb = jc then begin
        push jb (b_vals.(!pb) +. c_vals.(!pc));
        Stdlib.incr pb;
        Stdlib.incr pc
      end
      else if jb < jc then begin
        push jb b_vals.(!pb);
        Stdlib.incr pb
      end
      else begin
        push jc c_vals.(!pc);
        Stdlib.incr pc
      end
    done;
    while !pb < b_pos.(row + 1) do
      push b_crd.(!pb) b_vals.(!pb);
      Stdlib.incr pb
    done;
    while !pc < c_pos.(row + 1) do
      push c_crd.(!pc) c_vals.(!pc);
      Stdlib.incr pc
    done;
    pos.(row + 1) <- Dyn.Int.length crd
  done;
  T.of_csr ~rows:m ~cols:n pos (Dyn.Int.to_array crd) (Dyn.Float.to_array vals)
