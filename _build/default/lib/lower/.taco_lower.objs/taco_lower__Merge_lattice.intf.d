lib/lower/merge_lattice.mli: Format Taco_ir
