lib/lower/lower.ml: Hashtbl Imp Index_var List Merge_lattice Option Printf Taco_ir Taco_support Taco_tensor Tensor_var
