lib/lower/codegen_c.mli: Imp
