lib/lower/codegen_c.ml: Buffer Float Imp List Printf String
