lib/lower/merge_lattice.ml: Format List String Taco_ir Taco_support
