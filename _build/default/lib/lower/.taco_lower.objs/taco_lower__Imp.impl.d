lib/lower/imp.ml: Format Hashtbl List Printf String
