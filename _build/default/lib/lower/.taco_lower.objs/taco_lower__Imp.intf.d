lib/lower/imp.mli: Format
