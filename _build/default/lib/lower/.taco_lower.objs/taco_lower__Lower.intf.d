lib/lower/lower.mli: Imp Taco_ir Tensor_var
