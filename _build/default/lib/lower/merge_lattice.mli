(** Merge lattices (taco PLDI'17 §5, used here to lower forall statements
    over expressions that coiterate sparse data structures).

    A lattice point is the set of sparse iterators that are still
    "present". Multiplication intersects points (both operands must be
    present for the term to be nonzero), addition takes the union closure
    (either side alone still contributes). The lattice drives merge-loop
    generation: one while loop per point, case branches for sub-points. *)

(** Iterators are identified by indices the caller assigns (one per sparse
    access participating at the forall variable). *)
type point = int list  (** sorted, distinct iterator ids *)

type t = {
  points : point list;
      (** all points, sorted by decreasing cardinality; never contains the
          empty point *)
  needs_full : bool;
      (** the expression can be nonzero with every sparse iterator
          exhausted (e.g. a dense operand joins a union): the loop must
          cover the whole dimension *)
}

(** [build ~sparse_id expr] — [sparse_id] maps each access to [Some id]
    when it is a sparse iterator at the loop variable, [None] otherwise
    (dense operands, workspaces, accesses not indexed by the variable). *)
val build : sparse_id:(Taco_ir.Cin.access -> int option) -> Taco_ir.Cin.expr -> t

(** Sub-points of [p] within the lattice (subsets of [p], including [p]
    itself), by decreasing cardinality. *)
val sub_points : t -> point -> point list

val point_mem : int -> point -> bool

val pp : Format.formatter -> t -> unit
