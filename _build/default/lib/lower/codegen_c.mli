(** C source emission for lowered kernels (the paper's target, Fig. 6
    "Target Code"). Used for inspection and for the listing-fidelity tests
    that compare generated code structure against the paper's figures;
    execution happens through {!Taco_exec}. *)

(** Render a kernel as a self-contained C function. *)
val emit : Imp.kernel -> string

(** Render only the body statements (no signature), e.g. for diffs. *)
val emit_body : Imp.kernel -> string
