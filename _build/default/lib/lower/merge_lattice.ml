module Cin = Taco_ir.Cin

type point = int list

type t = { points : point list; needs_full : bool }

let norm p = List.sort_uniq compare p

let union a b = norm (a @ b)

(* Lattice of a sub-expression: the list of iterator sets under which it
   can contribute a nonzero value. The empty set means "contributes even
   when every sparse iterator is exhausted" (a dense term). *)
let rec lattice_of ~sparse_id = function
  | Cin.Literal 0. -> []
  | Cin.Literal _ -> [ [] ]
  | Cin.Access a -> (
      match sparse_id a with Some id -> [ [ id ] ] | None -> [ [] ])
  | Cin.Neg e -> lattice_of ~sparse_id e
  | Cin.Mul (a, b) | Cin.Div (a, b) ->
      let la = lattice_of ~sparse_id a and lb = lattice_of ~sparse_id b in
      List.concat_map (fun pa -> List.map (union pa) lb) la
  | Cin.Add (a, b) | Cin.Sub (a, b) ->
      let la = lattice_of ~sparse_id a and lb = lattice_of ~sparse_id b in
      List.concat_map (fun pa -> List.map (union pa) lb) la @ la @ lb

let build ~sparse_id expr =
  let raw = lattice_of ~sparse_id expr in
  let dedup = Taco_support.Util.dedup_stable (List.map norm raw) in
  let needs_full = List.mem [] dedup in
  let points = List.filter (fun p -> p <> []) dedup in
  let points =
    List.stable_sort (fun a b -> compare (List.length b) (List.length a)) points
  in
  { points; needs_full }

let point_mem id p = List.mem id p

let is_subset a b = List.for_all (fun x -> List.mem x b) a

let sub_points t p =
  List.filter (fun q -> is_subset q p) t.points

let pp fmt t =
  Format.fprintf fmt "{%s%s}"
    (String.concat "; "
       (List.map
          (fun p -> "{" ^ String.concat "," (List.map string_of_int p) ^ "}")
          t.points))
    (if t.needs_full then "; full" else "")
