(* Graph workload benchmarks: PageRank, BFS, Bellman-Ford and triangle
   counting from lib/graph — semiring-generalized compiled kernels
   iterated to fixpoint — timed under both the closure executor and the
   native C backend on one random graph per shape. The two backends'
   results must be bit-identical (the fixpoint drivers are deterministic
   and the native build pins -ffp-contract=off, so iterate sequences
   coincide exactly); divergence fails the bench. Results go to stdout
   as a table and to BENCH_graph.json for the @bench-drift gate. *)

open Taco
module G = Taco_graph.Graph
module Prng = Taco_support.Prng
module Coo = Taco_tensor.Coo

let get = Harness.get

(* A directed graph as a CSR 0/1 (or positively weighted) adjacency; an
   undirected one as its symmetric closure. *)
let random_graph ~seed ~nodes ~edge_prob ~kind =
  let prng = Prng.create seed in
  let coo = Coo.create [| nodes; nodes |] in
  let edges = ref 0 in
  (match kind with
  | `Undirected ->
      for i = 0 to nodes - 1 do
        for j = i + 1 to nodes - 1 do
          if Prng.bool prng edge_prob then begin
            Coo.push coo [| i; j |] 1.;
            Coo.push coo [| j; i |] 1.;
            edges := !edges + 2
          end
        done
      done
  | `Weighted ->
      for i = 0 to nodes - 1 do
        for j = 0 to nodes - 1 do
          if i <> j && Prng.bool prng edge_prob then begin
            Coo.push coo [| i; j |] (0.5 +. (5. *. Prng.float prng));
            incr edges
          end
        done
      done
  | `Directed ->
      for i = 0 to nodes - 1 do
        for j = 0 to nodes - 1 do
          if i <> j && Prng.bool prng edge_prob then begin
            Coo.push coo [| i; j |] 1.;
            incr edges
          end
        done
      done);
  (Tensor.pack coo Format.csr, !edges)

type workload = {
  g_name : string;
  (* Full fixpoint under a backend: (cells for the identity gate, iteration count). *)
  g_run : G.backend -> float array * int;
}

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun q x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(q) then ok := false)
        a;
      !ok)

(* Best-of-[reps] over ~50ms batches, backends interleaved round-robin:
   the same additive-noise estimator as the backend comparison. Kernels
   are compiled once per (op, semiring, backend) by lib/graph's cache,
   so only the first warm-up run pays the C compile. *)
let time_backends ~reps w backends =
  Gc.compact ();
  let t0 =
    List.fold_left
      (fun acc (_, b) ->
        let _, t = Taco_support.Util.time (fun () -> ignore (w.g_run b)) in
        Float.max acc t)
      1e-6 backends
  in
  let batch = max 1 (int_of_float (0.05 /. t0)) in
  let run_batch b =
    Gc.full_major ();
    let _, t =
      Taco_support.Util.time (fun () ->
          for _ = 1 to batch do
            ignore (w.g_run b)
          done)
    in
    t /. float_of_int batch
  in
  let best = Array.make (List.length backends) infinity in
  for _ = 1 to max 1 reps do
    List.iteri (fun q (_, b) -> best.(q) <- Float.min best.(q) (run_batch b)) backends
  done;
  List.mapi (fun q (n, _) -> (n, best.(q))) backends

type row = {
  r_name : string;
  r_closure_s : float;
  r_native_s : float;
  r_iters : int;
  r_identical : bool;
  r_native_backend : bool;
}

let run_workload ~reps native_available w =
  (* Warm-up runs double as the identity gate and compile the kernels. *)
  let cc, citers = w.g_run `Closure in
  let nc, niters = w.g_run `Native in
  let identical = bits_equal cc nc && citers = niters in
  let times = time_backends ~reps w [ ("closure", `Closure); ("native", `Native) ] in
  {
    r_name = w.g_name;
    r_closure_s = List.assoc "closure" times;
    r_native_s = List.assoc "native" times;
    r_iters = citers;
    r_identical = identical;
    r_native_backend = native_available;
  }

let row_json r =
  Report.Obj
    [
      ("name", Report.Str r.r_name);
      ( "measurements",
        Report.List
          [
            Report.Obj
              [ ("backend", Report.Str "closure"); ("best_s", Report.Float r.r_closure_s) ];
            Report.Obj
              [ ("backend", Report.Str "native"); ("best_s", Report.Float r.r_native_s) ];
          ] );
      ("speedup_native", Report.Float (r.r_closure_s /. r.r_native_s));
      ("iterations", Report.Int r.r_iters);
      ("bit_identical", Report.Bool r.r_identical);
      ("native_backend", Report.Bool r.r_native_backend);
    ]

let run ~seed ~reps ~nodes ~out =
  Harness.header "graph workloads: semiring kernels to fixpoint, closure vs native";
  let native_available = Native.available () in
  Printf.printf "compiler: %s (%s); %d nodes\n\n" (Native.compiler ())
    (if native_available then "available" else "NOT available - native degrades to closures")
    nodes;
  (* Average out-degree ~8 independent of the node count. *)
  let edge_prob = Float.min 0.5 (8. /. float_of_int nodes) in
  let adj, dir_edges = random_graph ~seed ~nodes ~edge_prob ~kind:`Directed in
  let wadj, _ = random_graph ~seed:(seed + 1) ~nodes ~edge_prob ~kind:`Weighted in
  let uadj, undir_edges = random_graph ~seed:(seed + 2) ~nodes ~edge_prob ~kind:`Undirected in
  Printf.printf "directed: %d edges; undirected: %d edges\n\n" dir_edges undir_edges;
  let workloads =
    [
      {
        g_name = "pagerank";
        g_run =
          (fun b ->
            let r, it = get (G.pagerank ~backend:b adj) in
            (r, it));
      };
      {
        g_name = "bfs";
        g_run =
          (fun b ->
            let levels, it = get (G.bfs ~backend:b adj ~src:0) in
            (Array.map float_of_int levels, it));
      };
      {
        g_name = "bellman_ford";
        g_run =
          (fun b ->
            let dist, it = get (G.bellman_ford ~backend:b wadj ~src:0) in
            (dist, it));
      };
      {
        g_name = "triangles";
        g_run =
          (fun b ->
            let t = get (G.triangle_count ~backend:b uadj) in
            ([| t |], 1));
      };
    ]
  in
  Harness.row "%-14s | %12s %12s %9s %6s %5s" "workload" "closure(s)" "native(s)"
    "speedup" "iters" "ok";
  let rows =
    List.map
      (fun w ->
        let r = run_workload ~reps native_available w in
        Harness.row "%-14s | %12.5f %12.5f %8.2fx %6d %5s" r.r_name r.r_closure_s
          r.r_native_s
          (r.r_closure_s /. r.r_native_s)
          r.r_iters
          (if not r.r_identical then "DIFF"
           else if not r.r_native_backend then "degr"
           else "bit=");
        if not r.r_identical then
          failwith
            (Printf.sprintf "%s: native fixpoint diverges from the closure executor"
               r.r_name);
        r)
      workloads
  in
  (if native_available then
     let geomean =
       Harness.geomean (List.map (fun r -> r.r_closure_s /. r.r_native_s) rows)
     in
     Printf.printf "\nnative geomean speedup = %.2fx over %d workloads\n%!" geomean
       (List.length rows));
  Report.write out
    (Report.Obj
       [
         ("bench", Report.Str "graph");
         ("seed", Report.Int seed);
         ("reps", Report.Int reps);
         ("nodes", Report.Int nodes);
         ("directed_edges", Report.Int dir_edges);
         ("undirected_edges", Report.Int undir_edges);
         ( "compiler",
           Report.Obj
             [
               ("command", Report.Str (Native.compiler ()));
               ("available", Report.Bool native_available);
             ] );
         ("workloads", Report.List (List.map row_json rows));
         ( "geomean_native_speedup",
           if native_available then
             Report.Float
               (Harness.geomean (List.map (fun r -> r.r_closure_s /. r.r_native_s) rows))
           else Report.Null );
       ])
