(* Fig. 12 left: MTTKRP with dense output on the FROSTT stand-ins —
   merge-based taco kernel vs the workspace kernel vs the hand-written
   SPLATT-style baseline, normalized to taco.

   Fig. 12 right: MTTKRP with sparse output and sparse matrix operands,
   relative to MTTKRP with dense output and dense operands, as operand
   density sweeps — reproducing the ~25% crossover of §VIII-D.

   With [?json] the raw measurements (wall clock + GC work) and the
   per-pass optimizer statistics of the generated kernels are also
   written as JSON. *)

open Taco
module K = Taco_kernels

let factor_rank = 16

let left ?(domains = 1) ?json ~seed ~scale ~reps () =
  Harness.header "Fig. 12 (left): MTTKRP, dense output";
  Printf.printf
    "(FROSTT stand-ins at extra scale 1/%d, J = %d, %d domain(s); normalized to taco)\n\n"
    scale factor_rank domains;
  let taco_kernel, tb, tc, td = Harness.mttkrp_kernel ~use_workspace:false in
  let ws_kernel, _, _, _ = Harness.mttkrp_kernel ~use_workspace:true in
  let splatt = Kernel.prepare K.Mttkrp.splatt_like in
  Harness.row "%-10s %9s | %9s %9s %9s | %8s %8s" "tensor" "nnz" "taco(s)" "ws(s)"
    "splatt(s)" "ws/taco" "spl/taco";
  let rows = ref [] in
  List.iter
    (fun ((entry : Suite.tensor_entry), bt) ->
      let dims = entry.Suite.t_dims in
      let c = Inputs.dense_factor ~seed:(seed + 1) ~rows:dims.(2) ~cols:factor_rank in
      let d = Inputs.dense_factor ~seed:(seed + 2) ~rows:dims.(1) ~cols:factor_rank in
      let out_dims = [| dims.(0); factor_rank |] in
      let run kern split inputs =
        if domains = 1 then ignore (Kernel.run_dense kern ~inputs ~dims:out_dims)
        else ignore (Taco_exec.Parallel.run_dense kern ~inputs ~dims:out_dims ~split ~domains)
      in
      let m_taco =
        Harness.measure ~reps (fun () ->
            run taco_kernel tb [ (tb, bt); (tc, c); (td, d) ])
      in
      let m_ws =
        Harness.measure ~reps (fun () -> run ws_kernel tb [ (tb, bt); (tc, c); (td, d) ])
      in
      let m_splatt =
        Harness.measure ~reps (fun () ->
            run splatt K.Mttkrp.b_var
              [ (K.Mttkrp.b_var, bt); (K.Mttkrp.c_var, c); (K.Mttkrp.d_var, d) ])
      in
      let t_taco = m_taco.Harness.m_median_s in
      let t_ws = m_ws.Harness.m_median_s in
      let t_splatt = m_splatt.Harness.m_median_s in
      rows :=
        Report.Obj
          [
            ("tensor", Report.Str entry.Suite.t_name);
            ("nnz", Report.Int (Tensor.stored bt));
            ("taco", Harness.measurement_json m_taco);
            ("workspace", Harness.measurement_json m_ws);
            ("splatt_like", Harness.measurement_json m_splatt);
          ]
        :: !rows;
      Harness.row "%-10s %9d | %9.3f %9.3f %9.3f | %8.2f %8.2f" entry.Suite.t_name
        (Tensor.stored bt) t_taco t_ws t_splatt (t_ws /. t_taco) (t_splatt /. t_taco))
    (Inputs.tensors ~seed ~scale);
  print_endline
    "\n(paper: workspace beats taco by 12-35% on the large NELL tensors and loses on";
  print_endline " the small Facebook tensor; SPLATT within ~5% of the workspace kernel)";
  match json with
  | None -> ()
  | Some path ->
      Report.write path
        (Report.Obj
           [
             ("bench", Report.Str "fig12left");
             ("seed", Report.Int seed);
             ("scale", Report.Int scale);
             ("reps", Report.Int reps);
             ("domains", Report.Int domains);
             ( "pass_stats",
               Report.Obj
                 [
                   ("mttkrp_taco", Harness.pass_stats_json (Kernel.info taco_kernel));
                   ("mttkrp_ws", Harness.pass_stats_json (Kernel.info ws_kernel));
                 ] );
             ("rows", Report.List (List.rev !rows));
           ])

let densities = [ 1.0; 0.25; 0.02; 0.01; 2.5e-3; 1e-4 ]

let right ?json ~seed ~scale ~reps () =
  Harness.header "Fig. 12 (right): MTTKRP sparse output / dense output";
  Printf.printf
    "(relative compute time, sparse-operand sparse-output vs dense MTTKRP, J = %d)\n\n"
    factor_rank;
  let dense_kernel, tb, tc, td = Harness.mttkrp_kernel ~use_workspace:true in
  let sparse_kernel, sb, sc, sd = Harness.mttkrp_sparse_kernel () in
  Harness.row "%-10s | %s" "tensor"
    (String.concat "  " (List.map (fun d -> Printf.sprintf "%8.0e" d) densities));
  let rows = ref [] in
  List.iter
    (fun ((entry : Suite.tensor_entry), bt) ->
      let dims = entry.Suite.t_dims in
      let out_dims = [| dims.(0); factor_rank |] in
      let cd = Inputs.dense_factor ~seed:(seed + 1) ~rows:dims.(2) ~cols:factor_rank in
      let dd = Inputs.dense_factor ~seed:(seed + 2) ~rows:dims.(1) ~cols:factor_rank in
      let m_dense =
        Harness.measure ~reps (fun () ->
            ignore
              (Kernel.run_dense dense_kernel ~inputs:[ (tb, bt); (tc, cd); (td, dd) ] ~dims:out_dims))
      in
      let t_dense = m_dense.Harness.m_median_s in
      let sweeps =
        List.map
          (fun density ->
            let c =
              Inputs.sparse_factor ~seed:(seed + 3) ~rows:dims.(2) ~cols:factor_rank ~density
            in
            let d =
              Inputs.sparse_factor ~seed:(seed + 4) ~rows:dims.(1) ~cols:factor_rank ~density
            in
            let m_sparse =
              Harness.measure ~reps (fun () ->
                  ignore
                    (Kernel.run_assemble sparse_kernel
                       ~inputs:[ (sb, bt); (sc, c); (sd, d) ]
                       ~dims:out_dims))
            in
            (density, m_sparse, m_sparse.Harness.m_median_s /. t_dense))
          densities
      in
      let rels = List.map (fun (_, _, r) -> r) sweeps in
      rows :=
        Report.Obj
          [
            ("tensor", Report.Str entry.Suite.t_name);
            ("nnz", Report.Int (Tensor.stored bt));
            ("dense", Harness.measurement_json m_dense);
            ( "sparse",
              Report.List
                (List.map
                   (fun (density, m, rel) ->
                     Report.Obj
                       [
                         ("operand_density", Report.Float density);
                         ("measurement", Harness.measurement_json m);
                         ("relative_to_dense", Report.Float rel);
                       ])
                   sweeps) );
          ]
        :: !rows;
      Harness.row "%-10s | %s" entry.Suite.t_name
        (String.concat "  " (List.map (fun r -> Printf.sprintf "%8.2f" r) rels));
      (* Report the crossover density (first density where sparse wins). *)
      (match List.find_opt (fun (_, r) -> r < 1.) (List.combine densities rels) with
      | Some (d, _) -> Printf.printf "  -> sparse wins from density %.0e downward\n" d
      | None -> Printf.printf "  -> sparse never wins at these densities\n"))
    (Inputs.tensors ~seed ~scale);
  print_endline "\n(paper: crossover around 25% density; 4.5-11x speedups at density 1e-4)";
  match json with
  | None -> ()
  | Some path ->
      Report.write path
        (Report.Obj
           [
             ("bench", Report.Str "fig12right");
             ("seed", Report.Int seed);
             ("scale", Report.Int scale);
             ("reps", Report.Int reps);
             ( "pass_stats",
               Report.Obj
                 [
                   ("mttkrp_dense", Harness.pass_stats_json (Kernel.info dense_kernel));
                   ("mttkrp_sparse", Harness.pass_stats_json (Kernel.info sparse_kernel));
                 ] );
             ("rows", Report.List (List.rev !rows));
           ])
