(* Cost-based autoscheduler vs the breadth-first policy. Each workload
   starts from the unscheduled concretized statement; both policies plan
   it (the cost search sees real per-tensor statistics), both plans are
   lowered and run on the same inputs, and where the paper gives a hand
   schedule (SpGEMM Gustavson, MTTKRP with workspace) that is measured
   too as the expert reference. The two plans' results must agree
   (Tensor.equal, eps 1e-9) — a hard gate, not a report field.

   Times, chosen steps, estimated costs and the search's own overhead go
   to BENCH_autoschedule.json; @bench-drift self-diffs that baseline. *)

open Taco

let get = Harness.get

let fused = Lower.Assemble { emit_values = true; sorted = true }

type workload = {
  a_name : string;
  a_stmt : Cin.stmt;  (* unscheduled root *)
  a_mode : Lower.mode;
  a_inputs : (Tensor_var.t * Tensor.t) list;
  a_dims : int array;  (* result dims *)
  a_dense : bool;  (* run_dense vs run_assemble *)
  a_hand : Cin.stmt option;  (* expert reference schedule, if any *)
}

let vi = Harness.vi
let vj = Harness.vj
let vk = Harness.vk
let vl = Harness.vl

let root_of stmt = Schedule.stmt (get (Schedule.of_index_notation stmt))

(* SpGEMM A = B·C, all CSR. Hand reference: the paper's Fig. 2 schedule
   (reorder k,j + dense workspace over j = Gustavson). *)
let spgemm ~seed ~dim =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (sum vk (Mul (access b [ vi; vk ], access c [ vk; vj ]))) in
  let hand, hb, hc = Harness.spgemm_stmt () in
  let density = 32. /. float_of_int dim in
  let bt = Inputs.uniform_matrix ~seed ~rows:dim ~cols:dim ~density in
  let ct = Inputs.uniform_matrix ~seed:(seed + 1) ~rows:dim ~cols:dim ~density in
  ignore hb;
  ignore hc;
  {
    a_name = "spgemm";
    a_stmt = root_of stmt;
    a_mode = fused;
    a_inputs = [ (b, bt); (c, ct) ];
    a_dims = [| dim; dim |];
    a_dense = false;
    a_hand = Some hand;
  }

(* SpMV with the matrix in CSC: the row-major loop order of the
   statement cannot iterate a column-major format, so every policy must
   at least reorder; the cost model additionally knows the j-outer loop
   is as cheap as nnz(B). *)
let spmv_csc ~seed ~dim =
  let y = tensor "y" Format.dense_vector in
  let b = tensor "B" Format.csc in
  let x = tensor "x" Format.dense_vector in
  let open Index_notation in
  let stmt = assign y [ vi ] (sum vj (Mul (access b [ vi; vj ], access x [ vj ]))) in
  let density = 64. /. float_of_int dim in
  let bt =
    Tensor.repack (Inputs.uniform_matrix ~seed ~rows:dim ~cols:dim ~density) Format.csc
  in
  let xt = Tensor.of_dense (Dense.init [| dim |] (fun _ -> 1.0)) Format.dense_vector in
  {
    a_name = "spmv_csc";
    a_stmt = root_of stmt;
    a_mode = Lower.Compute;
    a_inputs = [ (b, bt); (x, xt) ];
    a_dims = [| dim |];
    a_dense = true;
    a_hand = None;
  }

(* MTTKRP with dense output and factors, sparse 3-tensor. Hand
   reference: the §VIII-C schedule (reorders + dense workspace). *)
let mttkrp ~seed ~dim =
  let a = tensor "A" Format.dense_matrix in
  let b = tensor "B" (Format.csf 3) in
  let c = tensor "C" Format.dense_matrix in
  let d = tensor "D" Format.dense_matrix in
  let open Index_notation in
  let stmt =
    assign a [ vi; vj ]
      (sum vk (sum vl (Mul (Mul (access b [ vi; vk; vl ], access c [ vl; vj ]), access d [ vk; vj ]))))
  in
  let hand, _, _, _ = Harness.mttkrp_sched ~use_workspace:true in
  let prng = Taco_support.Prng.create seed in
  let bt =
    Gen.random_density prng ~dims:[| dim; dim / 2; dim / 2 |]
      ~density:(32. /. float_of_int (dim * dim)) (Format.csf 3)
  in
  let cols = 32 in
  let ct = Inputs.dense_factor ~seed:(seed + 1) ~rows:(dim / 2) ~cols in
  let dt = Inputs.dense_factor ~seed:(seed + 2) ~rows:(dim / 2) ~cols in
  {
    a_name = "mttkrp";
    a_stmt = root_of stmt;
    a_mode = Lower.Compute;
    a_inputs = [ (b, bt); (c, ct); (d, dt) ];
    a_dims = [| dim; cols |];
    a_dense = true;
    a_hand = Some hand;
  }

(* Three-matrix chain A = B·C·D, all CSR: two reduction variables, so a
   lowerable plan needs nontrivial scheduling. No hand reference — this
   is exactly the statement class the policy system is for. *)
let chain3 ~seed ~dim =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let d = tensor "D" Format.csr in
  let open Index_notation in
  let stmt =
    assign a [ vi; vj ]
      (sum vk
         (sum vl (Mul (Mul (access b [ vi; vk ], access c [ vk; vl ]), access d [ vl; vj ]))))
  in
  let density = 32. /. float_of_int dim in
  let bt = Inputs.uniform_matrix ~seed ~rows:dim ~cols:dim ~density in
  let ct = Inputs.uniform_matrix ~seed:(seed + 1) ~rows:dim ~cols:dim ~density in
  let dt = Inputs.uniform_matrix ~seed:(seed + 2) ~rows:dim ~cols:dim ~density in
  {
    a_name = "chain3";
    a_stmt = root_of stmt;
    a_mode = fused;
    a_inputs = [ (b, bt); (c, ct); (d, dt) ];
    a_dims = [| dim; dim |];
    a_dense = false;
    a_hand = None;
  }

(* --- running one plan -------------------------------------------------- *)

let kernel_of w stmt =
  Result.map Kernel.prepare (Lower.lower ~name:("autosched_" ^ w.a_name) ~mode:w.a_mode stmt)

let result_of w k =
  if w.a_dense then Kernel.run_dense k ~inputs:w.a_inputs ~dims:w.a_dims
  else Kernel.run_assemble k ~inputs:w.a_inputs ~dims:w.a_dims

let raw_run w k () =
  if w.a_dense then ignore (Kernel.run_dense k ~inputs:w.a_inputs ~dims:w.a_dims : Tensor.t)
  else Kernel.run_assemble_raw k ~inputs:w.a_inputs ~dims:w.a_dims

(* Best-of-[reps] over ~60ms batches with the plans interleaved
   round-robin (cbackend's estimator): noise is strictly additive, and
   interleaving keeps heap growth or a sustained slow phase from landing
   on whichever plan happens to be measured last. *)
let time_plans ~reps w kerns =
  Gc.compact ();
  let t0 =
    List.fold_left
      (fun acc (_, k) ->
        let _, t = Taco_support.Util.time (raw_run w k) in
        Float.max acc t)
      1e-6 kerns
  in
  let batch = max 1 (int_of_float (0.06 /. t0)) in
  let run_batch k =
    Gc.full_major ();
    let _, t =
      Taco_support.Util.time (fun () ->
          for _ = 1 to batch do
            raw_run w k ()
          done)
    in
    t /. float_of_int batch
  in
  let best = Array.make (List.length kerns) infinity in
  for _ = 1 to max 1 reps do
    List.iteri (fun q (_, k) -> best.(q) <- Float.min best.(q) (run_batch k)) kerns
  done;
  List.mapi (fun q (n, _) -> (n, best.(q))) kerns

let plan_json ?cost ?search_ns ~best_s ~steps label =
  Report.Obj
    ([
       ("policy", Report.Str label);
       ("steps", Report.List (List.map (fun s -> Report.Str s) steps));
       ("best_s", Report.Float best_s);
     ]
    @ (match cost with Some c -> [ ("est_cost", Report.Float c) ] | None -> [])
    @
    match search_ns with
    | Some ns -> [ ("search_ns", Report.Int (Int64.to_int ns)) ]
    | None -> [])

let run_workload ~reps w =
  Harness.header (Printf.sprintf "autoschedule: %s" w.a_name);
  let lowerable s = Result.map ignore (Lower.lower ~name:"probe" ~mode:w.a_mode s) in
  let stats =
    List.map (fun (tv, t) -> (Tensor_var.name tv, Stats.of_tensor t)) w.a_inputs
  in
  match Autoschedule.run ~lowerable w.a_stmt with
  | Error e ->
      Harness.row "  breadth-first policy failed: %s" e;
      Report.Obj [ ("name", Report.Str w.a_name); ("error", Report.Str e) ]
  | Ok (stmt_default, steps_default) ->
      let plan, explain = get (Autoschedule.search ~stats ~lowerable w.a_stmt) in
      let kd = get (kernel_of w stmt_default) in
      let kc = get (kernel_of w plan.Autoschedule.p_stmt) in
      let kh = Option.map (fun s -> get (kernel_of w s)) w.a_hand in
      (* Identity gate first, before any timing, so the compared results
         are not retained across the measurements. *)
      let identical = Tensor.equal ~eps:1e-9 (result_of w kd) (result_of w kc) in
      if not identical then
        failwith
          (Printf.sprintf "%s: cost-chosen plan's result diverges from the default plan's"
             w.a_name);
      let kerns =
        (("default", kd) :: ("cost", kc)
        :: match kh with Some k -> [ ("hand", k) ] | None -> [])
      in
      let times = time_plans ~reps w kerns in
      let steps_of = function
        | "default" -> List.map Autoschedule.step_to_string steps_default
        | "cost" -> List.map Autoschedule.step_to_string plan.Autoschedule.p_steps
        | _ -> []
      in
      let speedup = List.assoc "default" times /. List.assoc "cost" times in
      List.iter
        (fun (n, t) ->
          Harness.row "  %-8s | %10.4fs  %s" n t (String.concat "; " (steps_of n)))
        times;
      Harness.row "  cost vs default: %.2fx  (search %.1fms, %d states, %d lowerable)"
        speedup
        (Int64.to_float explain.Autoschedule.e_search_ns /. 1e6)
        explain.Autoschedule.e_considered explain.Autoschedule.e_lowerable;
      Report.Obj
        [
          ("name", Report.Str w.a_name);
          ( "plans",
            Report.List
              (List.map
                 (fun (n, t) ->
                   match n with
                   | "default" ->
                       plan_json ~cost:explain.Autoschedule.e_default_cost ~best_s:t
                         ~steps:(steps_of n) n
                   | "cost" ->
                       plan_json ~cost:explain.Autoschedule.e_chosen_cost
                         ~search_ns:explain.Autoschedule.e_search_ns ~best_s:t
                         ~steps:(steps_of n) n
                   | _ -> plan_json ~best_s:t ~steps:[] n)
                 times) );
          ("speedup_cost_vs_default", Report.Float speedup);
          ( "parallel_advisory",
            match plan.Autoschedule.p_par with
            | Some v -> Report.Str (Index_var.name v)
            | None -> Report.Null );
          ("results_equal", Report.Bool true);
          ( "explain",
            Report.Obj
              [
                ("considered", Report.Int explain.Autoschedule.e_considered);
                ("lowerable", Report.Int explain.Autoschedule.e_lowerable);
                ("default_cost", Report.Float explain.Autoschedule.e_default_cost);
                ("chosen_cost", Report.Float explain.Autoschedule.e_chosen_cost);
                ("search_ns", Report.Int (Int64.to_int explain.Autoschedule.e_search_ns));
              ] );
        ]

let run ~seed ~reps ~dim ~out =
  Harness.header "Autoscheduler: cost-based search vs breadth-first policy";
  let workloads =
    [ spgemm ~seed ~dim; spmv_csc ~seed ~dim:(dim * 4); mttkrp ~seed ~dim; chain3 ~seed ~dim ]
  in
  let rows = List.map (run_workload ~reps) workloads in
  Report.write out
    (Report.Obj
       [
         ("bench", Report.Str "autoschedule");
         ("seed", Report.Int seed);
         ("reps", Report.Int reps);
         ("dim", Report.Int dim);
         ("workloads", Report.List rows);
       ])

(* CI gate: on a micro SpGEMM the cost-chosen plan must agree with the
   default plan bit-for-bit when they coincide (and within eps always),
   and the search must not pick a plan estimated costlier than the
   default. Wall-clock is NOT gated — too noisy for CI. *)
let smoke () =
  Harness.header "autoschedule smoke (cost-chosen plan validity)";
  let w = spgemm ~seed:2019 ~dim:300 in
  let lowerable s = Result.map ignore (Lower.lower ~name:"probe" ~mode:w.a_mode s) in
  let stats =
    List.map (fun (tv, t) -> (Tensor_var.name tv, Stats.of_tensor t)) w.a_inputs
  in
  let stmt_default, _ = get (Autoschedule.run ~lowerable w.a_stmt) in
  let plan, explain = get (Autoschedule.search ~stats ~lowerable w.a_stmt) in
  if explain.Autoschedule.e_chosen_cost > explain.Autoschedule.e_default_cost then begin
    Taco_support.Obs.Log.err (fun m ->
        m "autosched-smoke FAILED: chosen plan estimated costlier than default");
    exit 1
  end;
  let kd = get (kernel_of w stmt_default) in
  let kc = get (kernel_of w plan.Autoschedule.p_stmt) in
  let rd = result_of w kd and rc = result_of w kc in
  if not (Tensor.equal ~eps:1e-9 rd rc) then begin
    Taco_support.Obs.Log.err (fun m ->
        m "autosched-smoke FAILED: cost plan result diverges from default plan");
    exit 1
  end;
  Printf.printf
    "autosched-smoke spgemm: default cost %.3g, chosen cost %.3g, %d steps, results agree\n%!"
    explain.Autoschedule.e_default_cost explain.Autoschedule.e_chosen_cost
    (List.length plan.Autoschedule.p_steps)
