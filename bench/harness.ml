(* Shared benchmark machinery: timing, schedules for the benchmarked
   kernels, and table printing. *)

open Taco
module Util = Taco_support.Util

let get = function Ok x -> x | Error e -> failwith e

(* One measurement: median wall-clock of [reps] runs plus the GC work
   the runs did, as per-run means over the whole batch (Gc.quick_stat
   deltas; [m_major_words] includes promotions, as Gc reports it). *)
type measurement = {
  m_median_s : float;
  m_reps : int;
  m_minor_words : float;
  m_major_words : float;
  m_promoted_words : float;
  m_minor_collections : float;
  m_major_collections : float;
}

let measure ~reps f =
  let reps = max 1 reps in
  let g0 = Gc.quick_stat () in
  let runs =
    List.init reps (fun _ ->
        let _, t = Util.time f in
        t)
  in
  let g1 = Gc.quick_stat () in
  let per x = x /. float_of_int reps in
  let peri x = float_of_int x /. float_of_int reps in
  {
    m_median_s = Util.median runs;
    m_reps = reps;
    m_minor_words = per (g1.Gc.minor_words -. g0.Gc.minor_words);
    m_major_words = per (g1.Gc.major_words -. g0.Gc.major_words);
    m_promoted_words = per (g1.Gc.promoted_words -. g0.Gc.promoted_words);
    m_minor_collections = peri (g1.Gc.minor_collections - g0.Gc.minor_collections);
    m_major_collections = peri (g1.Gc.major_collections - g0.Gc.major_collections);
  }

let measurement_json m =
  Report.Obj
    [
      ("median_s", Report.Float m.m_median_s);
      ("reps", Report.Int m.m_reps);
      ( "gc",
        Report.Obj
          [
            ("minor_words", Report.Float m.m_minor_words);
            ("major_words", Report.Float m.m_major_words);
            ("promoted_words", Report.Float m.m_promoted_words);
            ("minor_collections", Report.Float m.m_minor_collections);
            ("major_collections", Report.Float m.m_major_collections);
          ] );
    ]

(* Median wall-clock seconds of [reps] runs. *)
let time_median ~reps f = (measure ~reps f).m_median_s

(* Per-pass optimizer statistics of a lowered kernel, for attaching to
   benchmark JSON: what each pass costs, how it changes the IR size and
   how many rewrites fire. *)
let pass_stats_json ?config info =
  match Opt.optimize_stats ?config info.Lower.kernel with
  | Error e -> Report.Obj [ ("error", Report.Str e) ]
  | Ok (_, stats) ->
      Report.List
        (List.map
           (fun (s : Opt.pass_stat) ->
             Report.Obj
               [
                 ("pass", Report.Str s.Opt.ps_pass);
                 ("time_ns", Report.Int (Int64.to_int s.Opt.ps_time_ns));
                 ("nodes_before", Report.Int s.Opt.ps_nodes_before);
                 ("nodes_after", Report.Int s.Opt.ps_nodes_after);
                 ("fires", Report.Int s.Opt.ps_fires);
               ])
           stats)

let pct a b = 100. *. ((a /. b) -. 1.)

let header title =
  Printf.printf "\n==== %s ====\n%!" title

let row fmt = Printf.printf (fmt ^^ "\n%!")

let geomean xs =
  match xs with
  | [] -> nan
  | _ -> exp (List.fold_left (fun acc x -> acc +. log x) 0. xs /. float_of_int (List.length xs))

(* ------------------------------------------------------------------ *)
(* Benchmark schedules (shared between figures)                        *)
(* ------------------------------------------------------------------ *)

let vi = ivar "i"

let vj = ivar "j"

let vk = ivar "k"

let vl = ivar "l"

(* SpGEMM: A = B·C, all CSR, workspace transformation applied. *)
let spgemm_stmt () =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (sum vk (Mul (access b [ vi; vk ], access c [ vk; vj ]))) in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vk vj sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk ]), Cin.Access (Cin.access c [ vk; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  (Schedule.stmt sched, b, c)

let spgemm_kernel ~sorted =
  let stmt, b, c = spgemm_stmt () in
  let info =
    get (Lower.lower ~name:"spgemm_ws" ~mode:(Lower.Assemble { emit_values = true; sorted }) stmt)
  in
  (Kernel.prepare info, b, c)

(* MTTKRP with dense A, C, D: merge ("taco") and workspace variants. *)
let mttkrp_vars () =
  let a = tensor "A" Format.dense_matrix in
  let b = tensor "B" (Format.csf 3) in
  let c = tensor "C" Format.dense_matrix in
  let d = tensor "D" Format.dense_matrix in
  (a, b, c, d)

let mttkrp_sched ~use_workspace =
  let a, b, c, d = mttkrp_vars () in
  let open Index_notation in
  let stmt =
    assign a [ vi; vj ]
      (sum vk (sum vl (Mul (Mul (access b [ vi; vk; vl ], access c [ vl; vj ]), access d [ vk; vj ]))))
  in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vj vk sched) in
  let sched = get (Schedule.reorder vj vl sched) in
  let sched =
    if use_workspace then begin
      let w = workspace "w" Format.dense_vector in
      let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk; vl ]), Cin.Access (Cin.access c [ vl; vj ])) in
      get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched)
    end
    else sched
  in
  (Schedule.stmt sched, b, c, d)

let mttkrp_kernel ~use_workspace =
  let stmt, b, c, d = mttkrp_sched ~use_workspace in
  (Kernel.prepare (get (Lower.lower ~name:"mttkrp" ~mode:Lower.Compute stmt)), b, c, d)

(* MTTKRP with sparse A, C, D (paper §VIII-D): both precomputes, fused. *)
let mttkrp_sparse_kernel () =
  let a = tensor "A" Format.csr in
  let b = tensor "B" (Format.csf 3) in
  let c = tensor "C" Format.csr in
  let d = tensor "D" Format.csr in
  let open Index_notation in
  let stmt =
    assign a [ vi; vj ]
      (sum vk (sum vl (Mul (Mul (access b [ vi; vk; vl ], access c [ vl; vj ]), access d [ vk; vj ]))))
  in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vj vk sched) in
  let sched = get (Schedule.reorder vj vl sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk; vl ]), Cin.Access (Cin.access c [ vl; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  let v = workspace "v" Format.dense_vector in
  let e2 = Cin.Mul (Cin.Access (Cin.access w [ vj ]), Cin.Access (Cin.access d [ vk; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e2 ~over:[ vj ] ~workspace:v sched) in
  let info =
    get
      (Lower.lower ~name:"mttkrp_sparse"
         ~mode:(Lower.Assemble { emit_values = true; sorted = true })
         (Schedule.stmt sched))
  in
  (Kernel.prepare info, b, c, d)

(* n-operand addition statement A = B0 + ... + B(n-1). *)
let addition_vars n = List.init n (fun q -> tensor (Printf.sprintf "B%d" q) Format.csr)

let addition_merge_stmt ops =
  let a = tensor "A" Format.csr in
  let rhs =
    match List.map (fun tv -> Index_notation.access tv [ vi; vj ]) ops with
    | [] -> invalid_arg "no operands"
    | e :: rest -> List.fold_left (fun x y -> Index_notation.Add (x, y)) e rest
  in
  Schedule.stmt (get (Schedule.of_index_notation (Index_notation.assign a [ vi; vj ] rhs)))

(* Workspace addition: ∀i (∀j A = w) where (∀j w = B0 ; ∀j w += Bq ; …) —
   the n-operand generalization of Fig. 5b via result reuse. *)
let addition_workspace_stmt ops =
  let a = tensor "A" Format.csr in
  let w = workspace "w" Format.dense_vector in
  let acc tv = Cin.Access (Cin.access tv [ vi; vj ]) in
  let producer =
    match ops with
    | [] -> invalid_arg "no operands"
    | first :: rest ->
        List.fold_left
          (fun s tv ->
            Cin.Sequence (s, Cin.Forall (vj, Cin.accumulate (Cin.access w [ vj ]) (acc tv))))
          (Cin.Forall (vj, Cin.assign (Cin.access w [ vj ]) (acc first)))
          rest
  in
  let consumer =
    Cin.Forall (vj, Cin.assign (Cin.access a [ vi; vj ]) (Cin.Access (Cin.access w [ vj ])))
  in
  Cin.Forall (vi, Cin.Where (consumer, producer))
