(* Hand-rolled JSON emission for machine-readable benchmark results
   (the image has no yojson). Values are built as a tree and printed in
   one pass; floats use shortest round-trip formatting and non-finite
   values degrade to null so the output always parses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit b ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_string b "null"
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List vs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          emit b ~indent:(indent + 2) v)
        vs;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          emit b ~indent:(indent + 2) v)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  emit b ~indent:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let write path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v));
  Printf.printf "\nwrote %s\n%!" path

(* Shared schema fields for benches that compare execution backends:
   every per-measurement object carries which backend produced it, and
   native measurements break the build pipeline out per phase so emit /
   cc / dlopen cost is separable from kernel run time. *)

let backend_field name = ("backend", Str name)

let phases_field ~emit_ns ~cc_ns ~dlopen_ns ~run_ns =
  ( "phases",
    Obj
      [
        ("emit_ns", Int (Int64.to_int emit_ns));
        ("cc_ns", Int (Int64.to_int cc_ns));
        ("dlopen_ns", Int (Int64.to_int dlopen_ns));
        ("run_ns", Int (Int64.to_int run_ns));
      ] )
