(* Closed-loop load generator for the evaluation service (BENCH_serve).

   Drives a mixed SpGEMM / SpAdd / MTTKRP workload through
   [Taco_service.Service] with a fixed window of outstanding requests,
   sweeping the worker-domain count, and reports throughput, latency
   percentiles, service counters and compile-cache behaviour to
   BENCH_serve.json.

   The compile-cache numbers double as the coalescing proof: each sweep
   starts from a cleared cache and issues many concurrent requests over
   exactly three distinct kernel structures, so `misses` (closure
   builds) must equal 3 whatever the concurrency — the single-flight
   cache compiles each structure exactly once.

   --smoke additionally probes the failure paths (a deadline that must
   expire, a burst into a depth-1 queue that must be rejected), asserts
   all invariants in-process, and writes a service trace for
   bin/trace_check. This is the @serve-smoke gate. *)

open Taco
module Service = Taco_service.Service
module Diag = Taco_support.Diag

let failf fmt = Printf.ksprintf failwith fmt

let now_ns () = Trace.now_ns ()

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

type workload = { w_name : string; w_request : Service.request }

(* Three expressions with three distinct post-optimization kernel
   structures. SpGEMM and MTTKRP carry the paper's workspace schedules
   (Fig. 2 / §VIII-C); SpAdd lowers directly off the merge lattice. *)
let make_workloads ~n ~density prng =
  let csr2 dims = Gen.random_density prng ~dims ~density Format.csr in
  let dense2 dims = Tensor.of_dense (Gen.random_dense prng dims) Format.dense_matrix in
  let b = csr2 [| n; n |] in
  let c = csr2 [| n; n |] in
  let spgemm =
    {
      w_name = "spgemm";
      w_request =
        Service.request
          ~directives:
            [
              Service.Reorder ("k", "j");
              Service.Precompute
                { expr = "B(i,k) * C(k,j)"; over = [ "j" ]; workspace = "w" };
            ]
          ~result_format:Format.csr
          ~expr:"A(i,j) = B(i,k) * C(k,j)"
          ~inputs:[ ("B", b); ("C", c) ]
          ();
    }
  in
  let spadd =
    {
      w_name = "spadd";
      w_request =
        Service.request ~result_format:Format.csr
          ~expr:"A(i,j) = B(i,j) + C(i,j)"
          ~inputs:[ ("B", b); ("C", c) ]
          ();
    }
  in
  let nk = max 8 (n / 8) in
  let bt = Gen.random_density prng ~dims:[| n; nk; nk |] ~density (Format.csf 3) in
  let cm = dense2 [| nk; 16 |] in
  let dm = dense2 [| nk; 16 |] in
  let mttkrp =
    {
      w_name = "mttkrp";
      w_request =
        Service.request
          ~directives:
            [
              Service.Reorder ("j", "k");
              Service.Reorder ("j", "l");
              Service.Precompute
                { expr = "B(i,k,l) * C(l,j)"; over = [ "j" ]; workspace = "w" };
            ]
          ~expr:"A(i,j) = B(i,k,l) * C(l,j) * D(k,j)"
          ~inputs:[ ("B", bt); ("C", cm); ("D", dm) ]
          ();
    }
  in
  [| spgemm; spadd; mttkrp |]

(* ------------------------------------------------------------------ *)
(* Closed loop                                                         *)
(* ------------------------------------------------------------------ *)

type backoff = { bk_retries : int; bk_gave_up : int }

(* Per-workload latency distribution, reservoir-sampled (Algorithm R)
   with a deterministic PRNG so the sample — and hence the reported
   percentiles — is reproducible run to run. The reservoir bounds
   memory at high request counts while keeping every workload's
   percentiles unbiased; below [reservoir_capacity] observations it is
   simply exact. *)
let reservoir_capacity = 512

type reservoir = {
  rv_sample : float array;
  mutable rv_seen : int;
  rv_prng : Taco_support.Prng.t;
}

let reservoir_make seed =
  {
    rv_sample = Array.make reservoir_capacity 0.;
    rv_seen = 0;
    rv_prng = Taco_support.Prng.create seed;
  }

let reservoir_add rv v =
  if rv.rv_seen < reservoir_capacity then rv.rv_sample.(rv.rv_seen) <- v
  else begin
    let j = Taco_support.Prng.int rv.rv_prng (rv.rv_seen + 1) in
    if j < reservoir_capacity then rv.rv_sample.(j) <- v
  end;
  rv.rv_seen <- rv.rv_seen + 1

(* (sorted sample, observations seen) *)
let reservoir_finish rv =
  let n = min rv.rv_seen reservoir_capacity in
  let s = Array.sub rv.rv_sample 0 n in
  Array.sort compare s;
  (s, rv.rv_seen)

type sweep = {
  sw_domains : int;
  sw_elapsed_s : float;
  sw_throughput_rps : float;
  sw_lat_ms : float array;  (* sorted, all workloads *)
  sw_lat_by_workload : (string * (float array * int)) list;
  sw_stats : Service.stats;
  sw_cache : Compile.cache_stats;
  sw_backoff : backoff;
  sw_nnz : (string * int) list;  (* result nnz per workload, for cross-checking *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 |> max 0))

(* Seeded jittered exponential backoff against E_SERVE_QUEUE_FULL: the
   first retry honours the service's retry_after_ms hint when present,
   later ones double a base delay with PRNG jitter so retriers spread
   out deterministically under a fixed seed. *)
let max_backoff_attempts = 8

let backoff_sleep prng ~attempt ~hint_ms =
  let base =
    match (attempt, hint_ms) with
    | 0, Some ms -> float_of_int ms /. 1000.
    | _ -> 0.0005 *. float_of_int (1 lsl min attempt 10)
  in
  Unix.sleepf (base +. (Taco_support.Prng.float prng *. base))

let retry_hint_ms d =
  Option.bind
    (List.assoc_opt "retry_after_ms" d.Diag.context)
    int_of_string_opt

(* Keep [window] requests outstanding; await in FIFO order (matching the
   service's FIFO queue). Returns per-request latency (submit → resolve),
   the result nnz observed per workload, and the backoff counters. *)
let run_closed_loop svc workloads ~total ~window ~prng =
  let lat_ms = Array.make total 0. in
  let reservoirs =
    Array.to_list workloads
    |> List.mapi (fun i w -> (w.w_name, reservoir_make (7000 + i)))
  in
  let nnz : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let outstanding = Queue.create () in
  let retries = ref 0 and gave_up = ref 0 in
  let submit i =
    let w = workloads.(i mod Array.length workloads) in
    let t = now_ns () in
    let rec go attempt =
      match Service.submit svc w.w_request with
      | Ok ticket -> Queue.push (w.w_name, t, ticket) outstanding
      | Error d when d.Diag.code = "E_SERVE_QUEUE_FULL" ->
          if attempt >= max_backoff_attempts then begin
            incr gave_up;
            failf "loadgen: gave up on %s after %d backoff attempts" w.w_name attempt
          end
          else begin
            incr retries;
            backoff_sleep prng ~attempt ~hint_ms:(retry_hint_ms d);
            go (attempt + 1)
          end
      | Error d -> failf "loadgen: submit rejected unexpectedly: %s" (Diag.to_string d)
    in
    go 0
  in
  let t0 = now_ns () in
  let submitted = ref 0 and completed = ref 0 in
  while !completed < total do
    while !submitted < total && Queue.length outstanding < window do
      submit !submitted;
      incr submitted
    done;
    let name, t_submit, ticket = Queue.pop outstanding in
    (match Service.await ticket with
    | Ok r -> (
        let n = Tensor.nnz r.Service.tensor in
        match Hashtbl.find_opt nnz name with
        | None -> Hashtbl.replace nnz name n
        | Some prev when prev <> n ->
            failf "loadgen: %s result nnz changed between requests (%d vs %d)" name prev n
        | Some _ -> ())
    | Error d -> failf "loadgen: %s failed: %s" name (Diag.to_string d));
    let ms = Int64.to_float (Int64.sub (now_ns ()) t_submit) /. 1e6 in
    lat_ms.(!completed) <- ms;
    (match List.assoc_opt name reservoirs with
    | Some rv -> reservoir_add rv ms
    | None -> ());
    incr completed
  done;
  let elapsed_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  ( elapsed_s,
    lat_ms,
    List.map (fun (name, rv) -> (name, reservoir_finish rv)) reservoirs,
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) nnz [],
    { bk_retries = !retries; bk_gave_up = !gave_up } )

let run_sweep workloads ~domains ~total ~window =
  (* Each sweep restarts the coalescing experiment from an empty cache,
     and each gets its own fixed-seed PRNG so backoff jitter cannot leak
     nondeterminism between sweeps. *)
  Compile.cache_clear ();
  let prng = Taco_support.Prng.create (1000 + domains) in
  let svc = Service.create ~domains ~queue_depth:(max 64 window) () in
  let elapsed_s, lat_ms, by_workload, nnz, backoff =
    run_closed_loop svc workloads ~total ~window ~prng
  in
  Service.shutdown svc;
  let stats = Service.stats svc in
  let cache = Compile.cache_stats () in
  if stats.Service.completed <> total then
    failf "loadgen: %d/%d requests completed at %d domains" stats.Service.completed total
      domains;
  (* Shed jobs compile unoptimized — a second legitimate structure per
     workload — so the exactly-one-build-per-structure assertion only
     holds verbatim when nothing was shed. *)
  let structures = Array.length workloads in
  let max_builds = if stats.Service.shed = 0 then structures else 2 * structures in
  if cache.Compile.misses > max_builds || cache.Compile.misses < structures then
    failf
      "loadgen: coalescing violated at %d domains: %d closure builds for %d distinct \
       kernel structures (%d shed)"
      domains cache.Compile.misses structures stats.Service.shed;
  Array.sort compare lat_ms;
  {
    sw_domains = domains;
    sw_elapsed_s = elapsed_s;
    sw_throughput_rps = float_of_int total /. elapsed_s;
    sw_lat_ms = lat_ms;
    sw_lat_by_workload = by_workload;
    sw_stats = stats;
    sw_cache = cache;
    sw_backoff = backoff;
    sw_nnz = List.sort compare nnz;
  }

(* ------------------------------------------------------------------ *)
(* Failure-path probes (--smoke)                                       *)
(* ------------------------------------------------------------------ *)

let expect_code what code = function
  | Ok _ -> failf "loadgen: %s unexpectedly succeeded" what
  | Error d ->
      if d.Diag.code <> code then
        failf "loadgen: %s failed with %s, expected %s" what (Diag.to_string d) code

(* An already-expired deadline must come back as E_SERVE_DEADLINE: park a
   normal request first so the probe is guaranteed to be dequeued after
   its deadline passed. *)
let probe_deadline workloads =
  let svc = Service.create ~domains:1 ~queue_depth:8 () in
  let blocker = Service.submit svc workloads.(0).w_request in
  let probe = Service.eval svc ~deadline_ms:0 workloads.(1).w_request in
  expect_code "deadline probe" "E_SERVE_DEADLINE" probe;
  (match blocker with
  | Ok t -> ignore (Service.await t)
  | Error d -> failf "loadgen: blocker rejected: %s" (Diag.to_string d));
  Service.shutdown svc;
  let s = Service.stats svc in
  if s.Service.timed_out < 1 then failf "loadgen: deadline probe not counted as timed_out";
  Printf.printf "probe deadline: ok (timed_out=%d)\n%!" s.Service.timed_out

(* A burst into a single-worker, depth-1 queue must trip admission
   control on some submission. *)
let probe_backpressure workloads =
  let svc = Service.create ~domains:1 ~queue_depth:1 () in
  let tickets = ref [] in
  let rejections = ref 0 in
  for i = 0 to 7 do
    match Service.submit svc workloads.(i mod Array.length workloads).w_request with
    | Ok t -> tickets := t :: !tickets
    | Error d ->
        if d.Diag.code <> "E_SERVE_QUEUE_FULL" then
          failf "loadgen: burst rejected with %s, expected E_SERVE_QUEUE_FULL"
            (Diag.to_string d);
        if retry_hint_ms d = None then
          failf "loadgen: queue-full rejection carries no retry_after_ms hint";
        incr rejections
  done;
  List.iter (fun t -> ignore (Service.await t)) !tickets;
  Service.shutdown svc;
  let s = Service.stats svc in
  if !rejections < 1 then failf "loadgen: no backpressure rejection in a burst of 8";
  if s.Service.rejected <> !rejections then
    failf "loadgen: rejected stat %d does not match observed %d" s.Service.rejected
      !rejections;
  expect_code "submit after shutdown" "E_SERVE_SHUTDOWN"
    (Service.submit svc workloads.(0).w_request);
  Printf.printf "probe backpressure: ok (rejected=%d)\n%!" !rejections

(* A burst past a low shed mark must degrade (skip the optimizer) before
   rejecting, and degraded results must match the optimized ones. *)
let probe_shedding workloads =
  let svc = Service.create ~domains:1 ~queue_depth:16 ~shed_queue:2 () in
  let w = workloads.(0) in
  let clean =
    match Service.eval svc w.w_request with
    | Ok r -> Tensor.nnz r.Service.tensor
    | Error d -> failf "loadgen: shed probe warmup failed: %s" (Diag.to_string d)
  in
  let tickets = List.init 12 (fun _ -> Service.submit svc w.w_request) in
  List.iter
    (function
      | Ok t -> (
          match Service.await t with
          | Ok r ->
              if Tensor.nnz r.Service.tensor <> clean then
                failf "loadgen: shed result nnz differs from optimized run"
          | Error d -> failf "loadgen: shed probe request failed: %s" (Diag.to_string d))
      | Error d -> failf "loadgen: shed probe rejected: %s" (Diag.to_string d))
    tickets;
  Service.shutdown svc;
  let s = Service.stats svc in
  if s.Service.shed < 1 then
    failf "loadgen: burst of 12 into shed_queue=2 shed nothing (peak_queue=%d)"
      s.Service.peak_queue;
  Printf.printf "probe shedding: ok (shed=%d of %d)\n%!" s.Service.shed
    s.Service.submitted

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let sweep_json sw =
  let s = sw.sw_stats and c = sw.sw_cache in
  Report.Obj
    [
      ("domains", Report.Int sw.sw_domains);
      ("elapsed_s", Report.Float sw.sw_elapsed_s);
      ("throughput_rps", Report.Float sw.sw_throughput_rps);
      ( "latency_ms",
        Report.Obj
          [
            ("p50", Report.Float (percentile sw.sw_lat_ms 50.));
            ("p90", Report.Float (percentile sw.sw_lat_ms 90.));
            ("p99", Report.Float (percentile sw.sw_lat_ms 99.));
            ("max", Report.Float (percentile sw.sw_lat_ms 100.));
          ] );
      ( "latency_by_workload_ms",
        Report.Obj
          (List.map
             (fun (name, (sample, seen)) ->
               ( name,
                 Report.Obj
                   [
                     ("p50", Report.Float (percentile sample 50.));
                     ("p95", Report.Float (percentile sample 95.));
                     ("p99", Report.Float (percentile sample 99.));
                     ("samples", Report.Int (Array.length sample));
                     ("observations", Report.Int seen);
                   ] ))
             sw.sw_lat_by_workload) );
      ( "service",
        Report.Obj
          [
            ("submitted", Report.Int s.Service.submitted);
            ("rejected", Report.Int s.Service.rejected);
            ("completed", Report.Int s.Service.completed);
            ("timed_out", Report.Int s.Service.timed_out);
            ("failed", Report.Int s.Service.failed);
            ("peak_queue", Report.Int s.Service.peak_queue);
            ("total_wait_ms", Report.Float (Int64.to_float s.Service.total_wait_ns /. 1e6));
            ("total_run_ms", Report.Float (Int64.to_float s.Service.total_run_ns /. 1e6));
            ("shed", Report.Int s.Service.shed);
            ("crashed", Report.Int s.Service.crashed);
            ("replaced", Report.Int s.Service.replaced);
            ("quarantined", Report.Int s.Service.quarantined);
            ("peak_workers", Report.Int s.Service.peak_workers);
          ] );
      ( "backoff",
        Report.Obj
          [
            ("retries", Report.Int sw.sw_backoff.bk_retries);
            ("gave_up", Report.Int sw.sw_backoff.bk_gave_up);
            ("shed", Report.Int s.Service.shed);
          ] );
      ( "compile_cache",
        Report.Obj
          [
            ("hits", Report.Int c.Compile.hits);
            ("misses", Report.Int c.Compile.misses);
            ("coalesced", Report.Int c.Compile.coalesced);
            ("entries", Report.Int c.Compile.entries);
          ] );
      ( "result_nnz",
        Report.Obj (List.map (fun (k, v) -> (k, Report.Int v)) sw.sw_nnz) );
    ]

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false in
  let metrics = ref false in
  let total = ref 0 in
  let window = ref 8 in
  let size = ref 0 in
  let out = ref "BENCH_serve.json" in
  let trace_file = ref None in
  let domain_counts = ref [ 1; 2; 4 ] in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--metrics" :: rest ->
        metrics := true;
        parse rest
    | "--requests" :: n :: rest ->
        total := int_of_string n;
        parse rest
    | "--window" :: n :: rest ->
        window := int_of_string n;
        parse rest
    | "--size" :: n :: rest ->
        size := int_of_string n;
        parse rest
    | "--domains" :: spec :: rest ->
        domain_counts := List.map int_of_string (String.split_on_char ',' spec);
        parse rest
    | "--trace" :: f :: rest ->
        trace_file := Some f;
        parse rest
    | "--out" :: f :: rest ->
        out := f;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: loadgen [--smoke] [--metrics] [--requests N] [--window N] [--size N]\n\
          \               [--domains 1,2,4] [--trace FILE] [--out FILE]\n\
           unknown argument %S\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let total = if !total > 0 then !total else if !smoke then 48 else 240 in
  let size = if !size > 0 then !size else if !smoke then 150 else 400 in
  Obs.setup ();
  if !trace_file <> None then Trace.enable ();
  (* --metrics exists for the overhead A/B: the same run with and
     without the registry recording must agree on throughput to within
     a few percent (see EXPERIMENTS.md). *)
  if !metrics then Metrics.enable ();
  let prng = Taco_support.Prng.create 42 in
  let workloads = make_workloads ~n:size ~density:0.02 prng in
  Printf.printf
    "loadgen: %d requests (window %d) over %s, tensors %dx%d, %d cores available\n%!"
    total !window
    (String.concat "/" (Array.to_list (Array.map (fun w -> w.w_name) workloads)))
    size size
    (Domain.recommended_domain_count ());
  let sweeps =
    List.map
      (fun domains ->
        let sw = run_sweep workloads ~domains ~total ~window:!window in
        Printf.printf
          "domains=%d  %6.1f req/s  p50=%6.2fms p99=%6.2fms  peak_queue=%d  \
           compiles=%d coalesced=%d\n%!"
          domains sw.sw_throughput_rps (percentile sw.sw_lat_ms 50.)
          (percentile sw.sw_lat_ms 99.) sw.sw_stats.Service.peak_queue
          sw.sw_cache.Compile.misses sw.sw_cache.Compile.coalesced;
        List.iter
          (fun (name, (sample, seen)) ->
            Printf.printf
              "  %-8s p50=%6.2fms p95=%6.2fms p99=%6.2fms  (%d of %d observations)\n%!"
              name (percentile sample 50.) (percentile sample 95.)
              (percentile sample 99.) (Array.length sample) seen)
          sw.sw_lat_by_workload;
        sw)
      !domain_counts
  in
  (* Results must be identical whatever the domain count. *)
  (match sweeps with
  | first :: rest ->
      List.iter
        (fun sw ->
          if sw.sw_nnz <> first.sw_nnz then
            failf "loadgen: result nnz differs between %d and %d domains" first.sw_domains
              sw.sw_domains)
        rest
  | [] -> failf "loadgen: no domain counts to sweep");
  if !smoke then begin
    probe_deadline workloads;
    probe_backpressure workloads;
    probe_shedding workloads
  end;
  let speedup =
    match (sweeps, List.rev sweeps) with
    | one :: _, widest :: _ when widest.sw_domains > one.sw_domains ->
        Some (widest.sw_throughput_rps /. one.sw_throughput_rps)
    | _ -> None
  in
  let report =
    Report.Obj
      [
        ("bench", Report.Str "serve");
        ("smoke", Report.Bool !smoke);
        ("requests", Report.Int total);
        ("window", Report.Int !window);
        ("tensor_size", Report.Int size);
        ("cores", Report.Int (Domain.recommended_domain_count ()));
        ( "speedup_widest_vs_one",
          match speedup with Some s -> Report.Float s | None -> Report.Null );
        ("sweeps", Report.List (List.map sweep_json sweeps));
      ]
  in
  Report.write !out report;
  (match !trace_file with
  | None -> ()
  | Some f ->
      Trace.write_chrome f;
      Printf.printf "trace written to %s\n%!" f);
  Printf.printf "loadgen: OK\n%!"
