(* Closure executor vs the native C backend on the paper's workspace
   kernels (SpGEMM, SpAdd, MTTKRP). Each workload is prepared twice —
   once per backend — from the same lowered kernel and run on the same
   inputs; the bit-identity of the two results is a hard gate (the
   native build pins -ffp-contract=off exactly so this holds). Times go
   to stdout as a table and to BENCH_cbackend.json, with the native
   build pipeline broken out per phase (emit / cc / dlopen / run).

   The [smoke] entry point is the @cback-smoke alias: skipped cleanly
   (exit 0) when no C compiler is around; with one, a micro SpGEMM must
   build natively and match the closure result bit for bit. *)

open Taco

type workload = {
  w_name : string;
  w_info : Lower.kernel_info;
  w_time : Kernel.t -> unit;  (* raw runner for the clock *)
  w_result : Kernel.t -> Tensor.t;  (* wrapped runner for the identity gate *)
}

let fused = Lower.Assemble { emit_values = true; sorted = true }

let spgemm_workload ~seed ~dim =
  let stmt, b, c = Harness.spgemm_stmt () in
  let info = Harness.get (Lower.lower ~name:"spgemm_ws" ~mode:fused stmt) in
  let density = 32. /. float_of_int dim in
  let bt = Inputs.uniform_matrix ~seed ~rows:dim ~cols:dim ~density in
  let ct = Inputs.uniform_matrix ~seed:(seed + 1) ~rows:dim ~cols:dim ~density in
  let inputs = [ (b, bt); (c, ct) ] in
  let dims = [| dim; dim |] in
  {
    w_name = "spgemm_ws";
    w_info = info;
    w_time = (fun k -> Kernel.run_assemble_raw k ~inputs ~dims);
    w_result = (fun k -> Kernel.run_assemble k ~inputs ~dims);
  }

let spadd_workload ~seed ~dim =
  let ops = Harness.addition_vars 2 in
  let stmt = Harness.addition_merge_stmt ops in
  let info = Harness.get (Lower.lower ~name:"spadd_merge" ~mode:fused stmt) in
  let inputs = List.combine ops (Inputs.addition_operands ~seed ~n:2 ~dim) in
  let dims = [| dim; dim |] in
  {
    w_name = "spadd_merge";
    w_info = info;
    w_time = (fun k -> Kernel.run_assemble_raw k ~inputs ~dims);
    w_result = (fun k -> Kernel.run_assemble k ~inputs ~dims);
  }

let mttkrp_workload ~seed ~dim =
  let stmt, b, c, d = Harness.mttkrp_sched ~use_workspace:true in
  let info = Harness.get (Lower.lower ~name:"mttkrp_ws" ~mode:Lower.Compute stmt) in
  let prng = Taco_support.Prng.create seed in
  let bt =
    Gen.random_density prng ~dims:[| dim; dim / 2; dim / 2 |]
      ~density:(32. /. float_of_int (dim * dim)) (Format.csf 3)
  in
  let cols = 32 in
  let ct = Inputs.dense_factor ~seed:(seed + 1) ~rows:(dim / 2) ~cols in
  let dt = Inputs.dense_factor ~seed:(seed + 2) ~rows:(dim / 2) ~cols in
  let inputs = [ (b, bt); (c, ct); (d, dt) ] in
  let dims = [| dim; cols |] in
  {
    w_name = "mttkrp_ws";
    w_info = info;
    w_time = (fun k -> ignore (Kernel.run_dense k ~inputs ~dims : Tensor.t));
    w_result = (fun k -> Kernel.run_dense k ~inputs ~dims);
  }

(* --- bit identity ---------------------------------------------------- *)

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun q x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(q) then ok := false)
        a;
      !ok)

let tensors_identical t1 t2 =
  Tensor.dims t1 = Tensor.dims t2
  && Tensor.nnz t1 = Tensor.nnz t2
  && bits_equal (Tensor.vals t1) (Tensor.vals t2)

(* --- timing ----------------------------------------------------------- *)

(* Best-of-[reps] over ~60ms batches with the backends interleaved
   round-robin, same estimator as the optimizer ablation: noise is
   strictly additive and interleaving keeps a sustained slow phase from
   landing on one backend. *)
let time_backends ~reps w kerns =
  Gc.compact ();
  let t0 =
    List.fold_left
      (fun acc (_, k) ->
        let _, t = Taco_support.Util.time (fun () -> w.w_time k) in
        Float.max acc t)
      1e-6 kerns
  in
  let batch = max 1 (int_of_float (0.06 /. t0)) in
  let run_batch k =
    Gc.full_major ();
    let _, t =
      Taco_support.Util.time (fun () ->
          for _ = 1 to batch do
            w.w_time k
          done)
    in
    t /. float_of_int batch
  in
  let best = Array.make (List.length kerns) infinity in
  for _ = 1 to max 1 reps do
    List.iteri (fun q (_, k) -> best.(q) <- Float.min best.(q) (run_batch k)) kerns
  done;
  List.mapi (fun q (n, _) -> (n, best.(q))) kerns

(* --- one workload, both backends -------------------------------------- *)

type row = {
  r_name : string;
  r_closure_s : float;
  r_native_s : float;
  r_native_backend : bool;  (* false: the `Native request was downgraded *)
  r_identical : bool;
  r_phases : Native.phases option;
}

let run_workload ~reps w =
  let kc = Kernel.prepare w.w_info in
  let kn = Kernel.prepare ~backend:`Native w.w_info in
  let native_ok = Kernel.backend kn = `Native in
  let identical = tensors_identical (w.w_result kc) (w.w_result kn) in
  let times = time_backends ~reps w [ ("closure", kc); ("native", kn) ] in
  {
    r_name = w.w_name;
    r_closure_s = List.assoc "closure" times;
    r_native_s = List.assoc "native" times;
    r_native_backend = native_ok;
    r_identical = identical;
    r_phases = Kernel.native_phases kn;
  }

let row_json r =
  let measurement backend_name t =
    Report.Obj
      ([
         Report.backend_field backend_name;
         ("best_s", Report.Float t);
       ]
      @
      if backend_name = "native" then
        match r.r_phases with
        | Some p ->
            [
              Report.phases_field ~emit_ns:p.Native.emit_ns ~cc_ns:p.Native.cc_ns
                ~dlopen_ns:p.Native.dlopen_ns
                ~run_ns:(Int64.of_float (t *. 1e9));
            ]
        | None -> [ ("downgraded", Report.Bool true) ]
      else [])
  in
  Report.Obj
    [
      ("name", Report.Str r.r_name);
      ( "measurements",
        Report.List
          [ measurement "closure" r.r_closure_s; measurement "native" r.r_native_s ] );
      ("speedup_native", Report.Float (r.r_closure_s /. r.r_native_s));
      ("bit_identical", Report.Bool r.r_identical);
      ("native_backend", Report.Bool r.r_native_backend);
    ]

let run ~seed ~reps ~dim ~out =
  Harness.header "C backend: closure executor vs gcc-compiled shared objects";
  let cc = Native.compiler () in
  let available = Native.available () in
  Printf.printf "compiler: %s (%s)\n\n" cc
    (if available then "available" else "NOT available - native runs degrade to closures");
  let workloads =
    [
      spgemm_workload ~seed ~dim;
      spadd_workload ~seed ~dim:(dim * 5);
      mttkrp_workload ~seed ~dim;
    ]
  in
  Harness.row "%-12s | %12s %12s %9s %5s" "kernel" "closure(s)" "native(s)" "speedup" "ok";
  let rows =
    List.map
      (fun w ->
        let r = run_workload ~reps w in
        Harness.row "%-12s | %12.4f %12.4f %8.2fx %5s" r.r_name r.r_closure_s
          r.r_native_s
          (r.r_closure_s /. r.r_native_s)
          (if not r.r_identical then "DIFF"
           else if not r.r_native_backend then "degr"
           else "bit=");
        if not r.r_identical then
          failwith
            (Printf.sprintf "%s: native result diverges from the closure executor" r.r_name);
        r)
      workloads
  in
  let native_rows = List.filter (fun r -> r.r_native_backend) rows in
  (match native_rows with
  | [] -> print_endline "\nno native runs (compiler unavailable); no geomean"
  | _ ->
      let geomean =
        Harness.geomean (List.map (fun r -> r.r_closure_s /. r.r_native_s) native_rows)
      in
      Printf.printf "\nnative geomean speedup = %.2fx over %d kernels\n%!" geomean
        (List.length native_rows));
  let stats = Compile.backend_stats () in
  Report.write out
    (Report.Obj
       [
         ("bench", Report.Str "cbackend");
         ("seed", Report.Int seed);
         ("reps", Report.Int reps);
         ("dim", Report.Int dim);
         ( "compiler",
           Report.Obj
             [ ("command", Report.Str cc); ("available", Report.Bool available) ] );
         ("workloads", Report.List (List.map row_json rows));
         ( "geomean_native_speedup",
           match native_rows with
           | [] -> Report.Null
           | rs -> Report.Float (Harness.geomean (List.map (fun r -> r.r_closure_s /. r.r_native_s) rs))
         );
         ( "backend_stats",
           Report.Obj
             [
               ("native_builds", Report.Int stats.Compile.native_builds);
               ("native_runs", Report.Int stats.Compile.native_runs);
               ("closure_runs", Report.Int stats.Compile.closure_runs);
               ("downgrades", Report.Int stats.Compile.downgrades);
             ] );
       ])

(* CI gate: build one native kernel and hold it to bit-identity. Exits
   0 without a compiler — machines without gcc must stay green. *)
let smoke () =
  Harness.header "C backend smoke (build one kernel natively, assert bit-identity)";
  if not (Native.available ()) then begin
    Printf.printf "cback-smoke skipped: C compiler %S unavailable\n%!" (Native.compiler ());
    exit 0
  end;
  let w = spgemm_workload ~seed:2019 ~dim:400 in
  let kc = Kernel.prepare w.w_info in
  let kn = Kernel.prepare ~backend:`Native w.w_info in
  if Kernel.backend kn <> `Native then begin
    Taco_support.Obs.Log.err (fun m ->
        m "cback-smoke FAILED: compiler present but native build was downgraded");
    exit 1
  end;
  let identical = tensors_identical (w.w_result kc) (w.w_result kn) in
  let times = time_backends ~reps:3 w [ ("closure", kc); ("native", kn) ] in
  Printf.printf "cback-smoke spgemm_ws: closure %.4fs, native %.4fs (%.2fx), %s\n%!"
    (List.assoc "closure" times) (List.assoc "native" times)
    (List.assoc "closure" times /. List.assoc "native" times)
    (if identical then "bit-identical" else "DIVERGED");
  if not identical then begin
    Taco_support.Obs.Log.err (fun m ->
        m "cback-smoke FAILED: native result diverges from the closure executor");
    exit 1
  end
