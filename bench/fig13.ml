(* Fig. 13: chained sparse matrix additions.

   Left plot: total time to assemble and compute n additions (n+1
   operands) with
   - taco-binop: the generated pairwise kernel applied n times with
     temporaries (how a library is used);
   - taco: one generated fused multi-way merge kernel;
   - workspace: the dense-row-accumulator kernel (Fig. 5b generalized);
   - eigen-like and mkl-like: the hand-written pairwise baselines.

   Right table: assembly/compute breakdown when adding 7 operands. *)

open Taco
module K = Taco_kernels

let fused_mode = Lower.Assemble { emit_values = true; sorted = true }

let assemble_mode = Lower.Assemble { emit_values = false; sorted = true }

let pairwise_chain kern bvar cvar ops dims =
  match ops with
  | [] -> invalid_arg "no operands"
  | first :: rest ->
      List.fold_left
        (fun acc op -> Kernel.run_assemble kern ~inputs:[ (bvar, acc); (cvar, op) ] ~dims)
        first rest

let run ?json ~seed ~dim ~reps () =
  Harness.header "Fig. 13 (left): chained sparse additions";
  Printf.printf
    "(%dx%d operands, densities uniform in [1e-4, 0.01]; total seconds for n additions)\n\n"
    dim dim;
  (* Pairwise kernels (prepared once). *)
  let bv = tensor "B" Format.csr and cv = tensor "C" Format.csr in
  let pair_stmt = Harness.addition_merge_stmt [ bv; cv ] in
  let pair = Kernel.prepare (Harness.get (Lower.lower ~mode:fused_mode pair_stmt)) in
  let eigen = Kernel.prepare K.Spadd.eigen_like in
  let mkl = Kernel.prepare K.Spadd.mkl_like in
  let max_ops = 7 in
  let all_ops = Inputs.addition_operands ~seed ~n:max_ops ~dim in
  let dims = [| dim; dim |] in
  Harness.row "%-4s | %10s %10s %10s %10s %10s" "n" "taco-binop" "taco" "workspace"
    "eigen-like" "mkl-like";
  let left_rows = ref [] in
  for n = 1 to max_ops - 1 do
    let ops = List.filteri (fun q _ -> q <= n) all_ops in
    let op_vars = Harness.addition_vars (n + 1) in
    let bindings = List.combine op_vars ops in
    let merge_kernel =
      Kernel.prepare
        (Harness.get (Lower.lower ~mode:fused_mode (Harness.addition_merge_stmt op_vars)))
    in
    let ws_kernel =
      Kernel.prepare
        (Harness.get (Lower.lower ~mode:fused_mode (Harness.addition_workspace_stmt op_vars)))
    in
    let m_binop =
      Harness.measure ~reps (fun () -> ignore (pairwise_chain pair bv cv ops dims))
    in
    let m_taco =
      Harness.measure ~reps (fun () ->
          ignore (Kernel.run_assemble merge_kernel ~inputs:bindings ~dims))
    in
    let m_ws =
      Harness.measure ~reps (fun () ->
          ignore (Kernel.run_assemble ws_kernel ~inputs:bindings ~dims))
    in
    let m_eigen =
      Harness.measure ~reps (fun () ->
          ignore (pairwise_chain eigen K.Spadd.b_var K.Spadd.c_var ops dims))
    in
    let m_mkl =
      Harness.measure ~reps (fun () ->
          ignore (pairwise_chain mkl K.Spadd.b_var K.Spadd.c_var ops dims))
    in
    left_rows :=
      Report.Obj
        [
          ("n_additions", Report.Int n);
          ("taco_binop", Harness.measurement_json m_binop);
          ("taco", Harness.measurement_json m_taco);
          ("workspace", Harness.measurement_json m_ws);
          ("eigen_like", Harness.measurement_json m_eigen);
          ("mkl_like", Harness.measurement_json m_mkl);
          ( "pass_stats",
            Report.Obj
              [
                ("merge", Harness.pass_stats_json (Kernel.info merge_kernel));
                ("workspace", Harness.pass_stats_json (Kernel.info ws_kernel));
              ] );
        ]
      :: !left_rows;
    Harness.row "%-4d | %10.3f %10.3f %10.3f %10.3f %10.3f" n m_binop.Harness.m_median_s
      m_taco.Harness.m_median_s m_ws.Harness.m_median_s m_eigen.Harness.m_median_s
      m_mkl.Harness.m_median_s
  done;
  print_endline
    "\n(paper: workspace overtakes the merge codes beyond ~4 additions; taco beats";
  print_endline " MKL by 2.8x on average; Eigen and taco are competitive)";

  (* Right table: assembly/compute breakdown for 7 operands. *)
  Harness.header "Fig. 13 (right): assembly/compute breakdown, 7 operands";
  let op_vars = Harness.addition_vars max_ops in
  let bindings = List.combine op_vars all_ops in
  (* taco-binop: sum of per-step assembly and compute. *)
  let pair_asm = Kernel.prepare (Harness.get (Lower.lower ~mode:assemble_mode pair_stmt)) in
  let pair_cmp = Kernel.prepare (Harness.get (Lower.lower ~mode:Lower.Compute pair_stmt)) in
  let binop_split () =
    let asm_total = ref 0. and cmp_total = ref 0. in
    let acc = ref (List.hd all_ops) in
    List.iter
      (fun op ->
        let inputs = [ (bv, !acc); (cv, op) ] in
        let structure = ref (Tensor.zero dims Format.csr) in
        let _, t_asm =
          Taco_support.Util.time (fun () ->
              structure := Kernel.run_assemble pair_asm ~inputs ~dims)
        in
        let _, t_cmp =
          Taco_support.Util.time (fun () ->
              Kernel.run_compute pair_cmp ~inputs ~output:!structure)
        in
        asm_total := !asm_total +. t_asm;
        cmp_total := !cmp_total +. t_cmp;
        acc := !structure)
      (List.tl all_ops);
    (!asm_total, !cmp_total)
  in
  let split stmt =
    let asm = Kernel.prepare (Harness.get (Lower.lower ~mode:assemble_mode stmt)) in
    let cmp = Kernel.prepare (Harness.get (Lower.lower ~mode:Lower.Compute stmt)) in
    let structure = ref (Tensor.zero dims Format.csr) in
    let _, t_asm =
      Taco_support.Util.time (fun () ->
          structure := Kernel.run_assemble asm ~inputs:bindings ~dims)
    in
    let _, t_cmp =
      Taco_support.Util.time (fun () -> Kernel.run_compute cmp ~inputs:bindings ~output:!structure)
    in
    (t_asm, t_cmp)
  in
  let binop_asm, binop_cmp = binop_split () in
  let taco_asm, taco_cmp = split (Harness.addition_merge_stmt op_vars) in
  let ws_asm, ws_cmp = split (Harness.addition_workspace_stmt op_vars) in
  let t_eigen =
    Harness.time_median ~reps (fun () ->
        ignore (pairwise_chain eigen K.Spadd.b_var K.Spadd.c_var all_ops dims))
  in
  let t_mkl =
    Harness.time_median ~reps (fun () ->
        ignore (pairwise_chain mkl K.Spadd.b_var K.Spadd.c_var all_ops dims))
  in
  Harness.row "%-11s %12s %12s" "code" "assembly(ms)" "compute(ms)";
  Harness.row "%-11s %12.1f %12.1f" "taco bin" (1000. *. binop_asm) (1000. *. binop_cmp);
  Harness.row "%-11s %12.1f %12.1f" "taco" (1000. *. taco_asm) (1000. *. taco_cmp);
  Harness.row "%-11s %12.1f %12.1f" "workspace" (1000. *. ws_asm) (1000. *. ws_cmp);
  Harness.row "%-11s %12s %12.1f" "eigen-like" "-" (1000. *. t_eigen);
  Harness.row "%-11s %12s %12.1f" "mkl-like" "-" (1000. *. t_mkl);
  print_endline
    "\n(paper, ms: taco bin 247/211, taco 190/182, workspace 190/93, Eigen 436, MKL 1141;";
  print_endline " assembly dominates, and the workspace halves compute time)";
  match json with
  | None -> ()
  | Some path ->
      let split_json (asm, cmp) =
        Report.Obj [ ("assembly_s", Report.Float asm); ("compute_s", Report.Float cmp) ]
      in
      Report.write path
        (Report.Obj
           [
             ("bench", Report.Str "fig13");
             ("seed", Report.Int seed);
             ("dim", Report.Int dim);
             ("reps", Report.Int reps);
             ("rows", Report.List (List.rev !left_rows));
             ( "breakdown_7_operands",
               Report.Obj
                 [
                   ("taco_binop", split_json (binop_asm, binop_cmp));
                   ("taco", split_json (taco_asm, taco_cmp));
                   ("workspace", split_json (ws_asm, ws_cmp));
                   ("eigen_like_s", Report.Float t_eigen);
                   ("mkl_like_s", Report.Float t_mkl);
                 ] );
           ])
