(* Fig. 11: sparse matrix multiplication against the library baselines.

   Each Table I matrix is multiplied by a uniform synthetic operand of
   density 4e-4 and 1e-4. Left plot: sorted algorithms (generated
   workspace kernel vs the Eigen-like baseline, sorting time included).
   Right plot: unsorted algorithms (generated workspace kernel vs the
   MKL-like two-pass baseline). Reported numbers are runtimes normalized
   to the workspace kernel, as in the paper.

   With [?json] the raw measurements (wall clock + GC work) and the
   per-pass optimizer statistics of the generated kernels are also
   written as JSON. *)

open Taco
module K = Taco_kernels

let run ?json ~seed ~scale ~reps () =
  Harness.header "Fig. 11: SpGEMM vs library baselines";
  Printf.printf "(Table I stand-ins at scale 1/%d; operand densities 4e-4 and 1e-4;\n" scale;
  Printf.printf " times are medians of %d runs, normalized to the workspace kernel)\n\n" reps;
  let ws_sorted, bs, cs = Harness.spgemm_kernel ~sorted:true in
  let ws_unsorted, _, _ = Harness.spgemm_kernel ~sorted:false in
  let eigen = Kernel.prepare K.Spgemm.eigen_like in
  let mkl = Kernel.prepare K.Spgemm.mkl_like in
  Harness.row "%-3s %-11s %8s | %10s %10s %7s | %10s %10s %7s" "#" "matrix" "nnz"
    "ws-sort(s)" "eigen(s)" "ratio" "ws-uns(s)" "mkl(s)" "ratio";
  let ratios_eigen = ref [] and ratios_mkl = ref [] in
  let rows = ref [] in
  List.iter
    (fun ((entry : Suite.matrix_entry), bt) ->
      List.iter
        (fun density ->
          let ct =
            Inputs.uniform_matrix ~seed:(seed + entry.Suite.id) ~rows:entry.Suite.cols
              ~cols:entry.Suite.cols ~density
          in
          let dims = [| entry.Suite.rows; entry.Suite.cols |] in
          let generated_inputs = [ (bs, bt); (cs, ct) ] in
          let baseline_inputs = [ (K.Spgemm.b_var, bt); (K.Spgemm.c_var, ct) ] in
          let m_ws_sorted =
            Harness.measure ~reps (fun () ->
                ignore (Kernel.run_assemble ws_sorted ~inputs:generated_inputs ~dims))
          in
          let m_eigen =
            Harness.measure ~reps (fun () ->
                ignore (Kernel.run_assemble eigen ~inputs:baseline_inputs ~dims))
          in
          let m_ws_unsorted =
            Harness.measure ~reps (fun () ->
                ignore (Kernel.run_assemble ws_unsorted ~inputs:generated_inputs ~dims))
          in
          let m_mkl =
            Harness.measure ~reps (fun () ->
                ignore (Kernel.run_assemble mkl ~inputs:baseline_inputs ~dims))
          in
          let t_ws_sorted = m_ws_sorted.Harness.m_median_s in
          let t_eigen = m_eigen.Harness.m_median_s in
          let t_ws_unsorted = m_ws_unsorted.Harness.m_median_s in
          let t_mkl = m_mkl.Harness.m_median_s in
          ratios_eigen := (t_eigen /. t_ws_sorted) :: !ratios_eigen;
          ratios_mkl := (t_mkl /. t_ws_unsorted) :: !ratios_mkl;
          rows :=
            Report.Obj
              [
                ("matrix", Report.Str entry.Suite.name);
                ("id", Report.Int entry.Suite.id);
                ("nnz", Report.Int (Tensor.stored bt));
                ("operand_density", Report.Float density);
                ("ws_sorted", Harness.measurement_json m_ws_sorted);
                ("eigen_like", Harness.measurement_json m_eigen);
                ("ws_unsorted", Harness.measurement_json m_ws_unsorted);
                ("mkl_like", Harness.measurement_json m_mkl);
              ]
            :: !rows;
          Harness.row "%-3d %-11s %8d | %10.3f %10.3f %6.2fx | %10.3f %10.3f %6.2fx"
            entry.Suite.id entry.Suite.name
            (Tensor.stored bt) t_ws_sorted t_eigen (t_eigen /. t_ws_sorted) t_ws_unsorted
            t_mkl (t_mkl /. t_ws_unsorted))
        [ 4e-4; 1e-4 ])
    (Inputs.matrices ~seed ~scale);
  Printf.printf
    "\nsummary: eigen-like / workspace (sorted) geomean = %.2fx  (paper: 4x and 3.6x)\n"
    (Harness.geomean !ratios_eigen);
  Printf.printf
    "         mkl-like / workspace (unsorted) geomean = %.2fx  (paper: 1.28x and 1.16x)\n"
    (Harness.geomean !ratios_mkl);
  match json with
  | None -> ()
  | Some path ->
      Report.write path
        (Report.Obj
           [
             ("bench", Report.Str "fig11");
             ("seed", Report.Int seed);
             ("scale", Report.Int scale);
             ("reps", Report.Int reps);
             ( "pass_stats",
               Report.Obj
                 [
                   ("spgemm_ws_sorted", Harness.pass_stats_json (Kernel.info ws_sorted));
                   ("spgemm_ws_unsorted", Harness.pass_stats_json (Kernel.info ws_unsorted));
                 ] );
             ("rows", Report.List (List.rev !rows));
             ("geomean_eigen_over_ws", Report.Float (Harness.geomean !ratios_eigen));
             ("geomean_mkl_over_ws", Report.Float (Harness.geomean !ratios_mkl));
           ])
