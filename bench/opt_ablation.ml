(* Ablation of the Imp optimizer pipeline (Taco_lower.Opt): each paper
   workspace kernel is timed with no optimization, with each pass
   enabled alone, and with the full pipeline, attributing speedup per
   pass. Results go to stdout as a table and to BENCH_opt.json for
   machine consumption.

   The [smoke] entry point is the @perf-smoke alias: one micro SpGEMM
   config, failing (exit 1) if the fully optimized kernel is slower
   than the unoptimized one. *)

open Taco

let variants =
  [
    ("none", Opt.none);
    ("simplify", { Opt.none with Opt.simplify = true });
    ("memset_fusion", { Opt.none with Opt.memset_fusion = true });
    ("while_to_for", { Opt.none with Opt.while_to_for = true });
    ("branch_fusion", { Opt.none with Opt.branch_fusion = true });
    ("cse", { Opt.none with Opt.cse = true });
    ("licm", { Opt.none with Opt.licm = true });
    ("dce", { Opt.none with Opt.dce = true });
    ("full", Opt.all);
  ]

(* One workload: a lowered kernel plus a runner closure per prepared
   kernel (the preparation — and thus the optimizer configuration — is
   the variable; inputs stay fixed). *)
type workload = {
  w_name : string;
  w_info : Lower.kernel_info;
  w_run : Kernel.t -> unit;
}

let fused = Lower.Assemble { emit_values = true; sorted = true }

let spgemm_workload ~seed ~dim =
  let stmt, b, c = Harness.spgemm_stmt () in
  let info = Harness.get (Lower.lower ~name:"spgemm_ws" ~mode:fused stmt) in
  let bt = Inputs.uniform_matrix ~seed ~rows:dim ~cols:dim ~density:(32. /. float_of_int dim) in
  let ct = Inputs.uniform_matrix ~seed:(seed + 1) ~rows:dim ~cols:dim ~density:(32. /. float_of_int dim) in
  {
    w_name = "spgemm_ws";
    w_info = info;
    w_run =
      (fun k -> Kernel.run_assemble_raw k ~inputs:[ (b, bt); (c, ct) ] ~dims:[| dim; dim |]);
  }

let spadd_workload ~seed ~dim =
  let ops = Harness.addition_vars 2 in
  let stmt = Harness.addition_merge_stmt ops in
  let name = "spadd_merge" in
  let info = Harness.get (Lower.lower ~name ~mode:fused stmt) in
  let inputs = List.combine ops (Inputs.addition_operands ~seed ~n:2 ~dim) in
  {
    w_name = name;
    w_info = info;
    w_run = (fun k -> Kernel.run_assemble_raw k ~inputs ~dims:[| dim; dim |]);
  }

let mttkrp_workload ~seed ~dim =
  let stmt, b, c, d = Harness.mttkrp_sched ~use_workspace:true in
  let info = Harness.get (Lower.lower ~name:"mttkrp_ws" ~mode:Lower.Compute stmt) in
  let prng = Taco_support.Prng.create seed in
  let bt =
    Gen.random_density prng ~dims:[| dim; dim / 2; dim / 2 |]
      ~density:(32. /. float_of_int (dim * dim)) (Format.csf 3)
  in
  let cols = 32 in
  let ct = Inputs.dense_factor ~seed:(seed + 1) ~rows:(dim / 2) ~cols in
  let dt = Inputs.dense_factor ~seed:(seed + 2) ~rows:(dim / 2) ~cols in
  {
    w_name = "mttkrp_ws";
    w_info = info;
    w_run =
      (fun k ->
        ignore (Kernel.run_dense k ~inputs:[ (b, bt); (c, ct); (d, dt) ] ~dims:[| dim; cols |]));
  }

(* Best-of-[reps] over batches sized to ~60ms of work, with the
   variants interleaved round-robin: the ablation compares kernels that
   differ by a few percent, which the median of single ~10ms runs
   cannot resolve under scheduler and GC noise, and timing each variant
   in a contiguous block would let a sustained slow phase (CPU
   contention, thermal throttling) land entirely on one variant.
   Interleaving spreads any such phase across all variants and the
   minimum of batched runs is the standard estimator for the
   noise-free cost (noise is strictly additive). *)
let time_variants ?(variants = variants) ~reps w =
  Gc.compact ();
  let kerns =
    List.map (fun (n, cfg) -> (n, Kernel.prepare ~opt:cfg w.w_info)) variants
  in
  (* Warm each kernel once outside the clock (also populates the kernel
     cache) and size batches off the slowest warm run so every variant
     runs the same batch length. *)
  let t0 =
    List.fold_left
      (fun acc (_, k) ->
        let _, t = Taco_support.Util.time (fun () -> w.w_run k) in
        Float.max acc t)
      1e-6 kerns
  in
  let batch = max 1 (int_of_float (0.06 /. t0)) in
  let run_batch k =
    (* Collect the previous run's garbage outside the clock: the runs
       allocate identically, so without this the major-GC slices they
       trigger land deterministically on the same variants every round
       and min-of-reps cannot average the bias away. *)
    Gc.full_major ();
    let _, t =
      Taco_support.Util.time (fun () ->
          for _ = 1 to batch do
            w.w_run k
          done)
    in
    t /. float_of_int batch
  in
  let best = Array.make (List.length kerns) infinity in
  for _ = 1 to max 1 reps do
    List.iteri (fun q (_, k) -> best.(q) <- Float.min best.(q) (run_batch k)) kerns
  done;
  List.mapi (fun q (n, _) -> (n, best.(q))) kerns

let write_json ~path ~seed ~reps rows geomean =
  Report.write path
    (Report.Obj
       [
         ("bench", Report.Str "opt_ablation");
         ("seed", Report.Int seed);
         ("reps", Report.Int reps);
         ( "variants",
           Report.List (List.map (fun (n, _) -> Report.Str n) variants) );
         ( "workloads",
           Report.List
             (List.map
                (fun (name, times, gc_full, pass_stats) ->
                  Report.Obj
                    [
                      ("name", Report.Str name);
                      ( "times_s",
                        Report.Obj
                          (List.map (fun (v, t) -> (v, Report.Float t)) times) );
                      ("full_measurement", gc_full);
                      ("pass_stats", pass_stats);
                    ])
                rows) );
         ("geomean_full_speedup", Report.Float geomean);
       ])

let run ~seed ~reps ~dim ~out =
  Harness.header "Optimizer ablation: unoptimized vs per-pass vs full pipeline";
  let workloads =
    [
      spgemm_workload ~seed ~dim;
      spadd_workload ~seed ~dim:(dim * 5);
      mttkrp_workload ~seed ~dim;
    ]
  in
  Harness.row "%-12s | %s %9s" "kernel"
    (String.concat " "
       (List.map (fun (n, _) -> Printf.sprintf "%13s" (n ^ "(s)")) variants))
    "speedup";
  let rows =
    List.map
      (fun w ->
        let times = time_variants ~reps w in
        let t_none = List.assoc "none" times in
        let t_full = List.assoc "full" times in
        Harness.row "%-12s | %s %8.2fx" w.w_name
          (String.concat " " (List.map (fun (_, t) -> Printf.sprintf "%13.4f" t) times))
          (t_none /. t_full);
        (* GC work of the fully optimized kernel (prepared again — the
           kernel cache makes this a hit) and the per-pass optimizer
           statistics, for the machine-readable output. *)
        let full = Kernel.prepare ~opt:Opt.all w.w_info in
        let gc_full =
          Harness.measurement_json
            (Harness.measure ~reps:(max 3 reps) (fun () -> w.w_run full))
        in
        (w.w_name, times, gc_full, Harness.pass_stats_json w.w_info))
      workloads
  in
  let geomean =
    Harness.geomean
      (List.map
         (fun (_, times, _, _) -> List.assoc "none" times /. List.assoc "full" times)
         rows)
  in
  Printf.printf "\nfull-pipeline geomean speedup = %.2fx\n%!" geomean;
  write_json ~path:out ~seed ~reps rows geomean

(* Tiny SpGEMM config for CI: the full pipeline must not lose to the
   unoptimized kernel. *)
let smoke () =
  let w = spgemm_workload ~seed:2019 ~dim:600 in
  let times =
    time_variants ~variants:[ ("none", Opt.none); ("full", Opt.all) ] ~reps:5 w
  in
  let t_none = List.assoc "none" times in
  let t_full = List.assoc "full" times in
  Printf.printf "perf-smoke spgemm_ws: unoptimized %.4fs, optimized %.4fs (%.2fx)\n%!"
    t_none t_full (t_none /. t_full);
  if t_full > t_none then begin
    Taco_support.Obs.Log.err (fun m ->
        m "perf-smoke FAILED: optimized kernel is slower than unoptimized (%.4fs > %.4fs)"
          t_full t_none);
    exit 1
  end
