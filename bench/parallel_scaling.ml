(* Parallel scaling of the parallelize-scheduled paper kernels.

   The three workspace kernels (SpGEMM, SpAdd, MTTKRP) are compiled with
   the outer loop parallelized and run at 1..N chunk domains. For every
   point the result is checked bit-identical against the sequential run
   — the sweep doubles as a determinism gate — and the wall-clock
   medians and speedups land in BENCH_parallel.json.

   The domain budget is temporarily raised to the sweep's width so the
   chunks really run on their own domains even when the machine
   recommends fewer; the machine's recommended domain count is recorded
   in the JSON so single-core results (where every "parallel" point
   measures chunk-and-merge overhead, not speedup) read as what they
   are. *)

open Taco
module Prng = Taco_support.Prng

let get = Harness.get

let getd = function Ok x -> x | Error d -> failwith (Diag.to_string d)

let vi = Harness.vi

let vj = Harness.vj

let vk = Harness.vk

let vl = Harness.vl

(* --- the three kernels, parallelized over the outer index ------------ *)

let spgemm_compiled () =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (sum vk (Mul (access b [ vi; vk ], access c [ vk; vj ]))) in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vk vj sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk ]), Cin.Access (Cin.access c [ vk; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  let sched = getd (parallelize vi sched) in
  (b, c, getd (compile ~name:"spgemm_par" sched))

let spadd_compiled () =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (Add (access b [ vi; vj ], access c [ vi; vj ])) in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = getd (parallelize vi sched) in
  (b, c, getd (compile ~name:"spadd_par" sched))

let mttkrp_compiled () =
  let a = tensor "A" Format.dense_matrix in
  let b = tensor "B" (Format.csf 3) in
  let c = tensor "C" Format.dense_matrix in
  let d = tensor "D" Format.dense_matrix in
  let open Index_notation in
  let stmt =
    assign a [ vi; vj ]
      (sum vk
         (sum vl (Mul (Mul (access b [ vi; vk; vl ], access c [ vl; vj ]), access d [ vk; vj ]))))
  in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vj vk sched) in
  let sched = get (Schedule.reorder vj vl sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk; vl ]), Cin.Access (Cin.access c [ vl; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  let sched = getd (parallelize vi sched) in
  (b, c, d, getd (compile ~name:"mttkrp_par" sched))

(* --- bit identity across domain counts ------------------------------- *)

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun q x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(q) then ok := false)
        a;
      !ok)

let tensors_identical t1 t2 =
  Tensor.dims t1 = Tensor.dims t2
  && Tensor.nnz t1 = Tensor.nnz t2
  && bits_equal (Tensor.vals t1) (Tensor.vals t2)

(* --- the sweep -------------------------------------------------------- *)

type point = { p_domains : int; p_m : Harness.measurement; p_speedup : float; p_identical : bool }

let sweep ~reps ~domain_counts name compiled inputs =
  let reference = getd (run ~domains:1 compiled ~inputs) in
  let points =
    List.map
      (fun k ->
        let r = getd (run ~domains:k compiled ~inputs) in
        let identical = tensors_identical reference r in
        let m =
          Harness.measure ~reps (fun () -> ignore (getd (run ~domains:k compiled ~inputs)))
        in
        (k, m, identical))
      domain_counts
  in
  let seq_s =
    match points with
    | (1, m, _) :: _ -> m.Harness.m_median_s
    | _ -> invalid_arg "sweep: domain_counts must start at 1"
  in
  List.map
    (fun (k, m, identical) ->
      let p =
        {
          p_domains = k;
          p_m = m;
          p_speedup = seq_s /. m.Harness.m_median_s;
          p_identical = identical;
        }
      in
      Harness.row "  %-8s %2d domains  %10.6fs  speedup %5.2fx  %s" name k
        m.Harness.m_median_s p.p_speedup
        (if identical then "bit-identical" else "DIVERGED");
      if not identical then
        failwith (Printf.sprintf "%s: %d-domain result diverges from sequential" name k);
      p)
    points

let kernel_json name points =
  Report.Obj
    [
      ("kernel", Report.Str name);
      ( "points",
        Report.List
          (List.map
             (fun p ->
               Report.Obj
                 [
                   ("domains", Report.Int p.p_domains);
                   ("median_s", Report.Float p.p_m.Harness.m_median_s);
                   ("speedup", Report.Float p.p_speedup);
                   ("bit_identical", Report.Bool p.p_identical);
                   ("measurement", Harness.measurement_json p.p_m);
                 ])
             points) );
    ]

let with_budget ~extra f =
  let old = Budget.capacity () in
  Budget.set_capacity (max old extra);
  Fun.protect ~finally:(fun () -> Budget.set_capacity old) f

let run_points ~seed ~scale ~reps ~domain_counts =
  let prng = Prng.create seed in
  let dim = max 128 (2000 / scale) in
  let density = 0.02 in
  let spgemm_b = Gen.random_density prng ~dims:[| dim; dim |] ~density Format.csr in
  let spgemm_c = Gen.random_density prng ~dims:[| dim; dim |] ~density Format.csr in
  let add_dim = max 256 (4000 / scale) in
  let spadd_b = Gen.random_density prng ~dims:[| add_dim; add_dim |] ~density Format.csr in
  let spadd_c = Gen.random_density prng ~dims:[| add_dim; add_dim |] ~density Format.csr in
  let di = max 64 (800 / scale) and dk = max 16 (200 / scale) in
  let dl = max 16 (200 / scale) and dj = 32 in
  let mtt_b = Gen.random_density prng ~dims:[| di; dk; dl |] ~density:0.05 (Format.csf 3) in
  let mtt_c = Tensor.of_dense (Gen.random_dense prng [| dl; dj |]) Format.dense_matrix in
  let mtt_d = Tensor.of_dense (Gen.random_dense prng [| dk; dj |]) Format.dense_matrix in
  with_budget ~extra:(List.fold_left max 1 domain_counts - 1) @@ fun () ->
  let b, c, spgemm = spgemm_compiled () in
  let spgemm_pts =
    sweep ~reps ~domain_counts "spgemm" spgemm [ (b, spgemm_b); (c, spgemm_c) ]
  in
  let b, c, spadd = spadd_compiled () in
  let spadd_pts = sweep ~reps ~domain_counts "spadd" spadd [ (b, spadd_b); (c, spadd_c) ] in
  let b, c, d, mttkrp = mttkrp_compiled () in
  let mttkrp_pts =
    sweep ~reps ~domain_counts "mttkrp" mttkrp [ (b, mtt_b); (c, mtt_c); (d, mtt_d) ]
  in
  [ ("spgemm", spgemm_pts); ("spadd", spadd_pts); ("mttkrp", mttkrp_pts) ]

let run ~seed ~scale ~reps ~max_domains ~out =
  Harness.header "Parallel scaling: parallelize-scheduled kernels over OCaml domains";
  let recommended = Budget.recommended () in
  Printf.printf
    "(chunked outer loop, per-domain workspaces; machine recommends %d domain%s —\n\
    \ on a single core the sweep measures chunk-and-merge overhead, not speedup)\n\n"
    recommended
    (if recommended = 1 then "" else "s");
  let domain_counts = List.init max_domains (fun q -> q + 1) in
  let results = run_points ~seed ~scale ~reps ~domain_counts in
  Report.write out
    (Report.Obj
       [
         ("experiment", Report.Str "parallel_scaling");
         ("seed", Report.Int seed);
         ("scale", Report.Int scale);
         ( "machine",
           Report.Obj
             [
               ("recommended_domains", Report.Int recommended);
               ("swept_domains", Report.Int max_domains);
             ] );
         ("kernels", Report.List (List.map (fun (n, ps) -> kernel_json n ps) results));
       ])

(* CI gate: tiny inputs, a 2-domain sweep, no JSON. Fails (exit 1) if
   any chunked run diverges from the sequential one. *)
let smoke () =
  Harness.header "Parallel scaling smoke (2 domains, determinism gate)";
  let results = run_points ~seed:2019 ~scale:64 ~reps:1 ~domain_counts:[ 1; 2 ] in
  ignore results;
  print_endline "parallel smoke OK: every chunked result bit-identical to sequential"
