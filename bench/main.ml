(* Benchmark harness reproducing every table and figure of the paper's
   evaluation (§VIII). See DESIGN.md for the per-experiment index and
   EXPERIMENTS.md for recorded paper-vs-measured results.

   Usage:
     dune exec bench/main.exe                 # everything, default scales
     dune exec bench/main.exe -- fig11        # one experiment
     dune exec bench/main.exe -- fig11 --scale 16 --reps 1
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 2019 & info [ "seed" ] ~doc:"PRNG seed for all synthetic inputs.")

let scale_arg =
  Arg.(
    value & opt int 8
    & info [ "scale" ]
        ~doc:"Divide Table I matrix dimensions by this factor (nnz by its square).")

let tensor_scale_arg =
  Arg.(
    value & opt int 2
    & info [ "tensor-scale" ]
        ~doc:"Extra scaling of the FROSTT stand-ins (dims / s, nnz / s^2).")

let reps_arg =
  Arg.(value & opt int 3 & info [ "reps" ] ~doc:"Repetitions per measurement (median).")

let add_dim_arg =
  Arg.(
    value & opt int 4000
    & info [ "add-dim" ] ~doc:"Matrix dimension for the Fig. 13 addition chains.")

let json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Also write the raw measurements (wall clock, GC work, per-pass optimizer \
           statistics) as JSON to PATH.")

let table1_cmd =
  let run seed scale tensor_scale = Table1.run ~seed ~scale ~tensor_scale in
  Cmd.v (Cmd.info "table1" ~doc:"Print the Table I input inventory.")
    Term.(const run $ seed_arg $ scale_arg $ tensor_scale_arg)

let fig11_cmd =
  let run seed scale reps json = Fig11.run ?json ~seed ~scale ~reps () in
  Cmd.v (Cmd.info "fig11" ~doc:"SpGEMM vs Eigen-like and MKL-like baselines.")
    Term.(const run $ seed_arg $ scale_arg $ reps_arg $ json_arg)

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:"Run the MTTKRP variants data-parallel over this many OCaml domains.")

let fig12left_cmd =
  let run seed tensor_scale reps domains json =
    Fig12.left ~domains ?json ~seed ~scale:tensor_scale ~reps ()
  in
  Cmd.v (Cmd.info "fig12left" ~doc:"MTTKRP with dense output vs SPLATT-like baseline.")
    Term.(const run $ seed_arg $ tensor_scale_arg $ reps_arg $ domains_arg $ json_arg)

let fig12right_cmd =
  let run seed tensor_scale reps json = Fig12.right ?json ~seed ~scale:tensor_scale ~reps () in
  Cmd.v
    (Cmd.info "fig12right" ~doc:"MTTKRP sparse vs dense output across operand densities.")
    Term.(const run $ seed_arg $ tensor_scale_arg $ reps_arg $ json_arg)

let fig13_cmd =
  let run seed dim reps json = Fig13.run ?json ~seed ~dim ~reps () in
  Cmd.v (Cmd.info "fig13" ~doc:"Chained sparse matrix additions.")
    Term.(const run $ seed_arg $ add_dim_arg $ reps_arg $ json_arg)

let ablation_cmd =
  let run seed scale reps =
    Ablation.run ~seed ~scale ~reps;
    Ablation.tiling ~seed ~reps;
    Ablation.inner_vs_gustavson ~seed ~reps
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Design-choice ablations: hash vs dense workspace, result reuse, sorting.")
    Term.(const run $ seed_arg $ scale_arg $ reps_arg)

let micro_cmd =
  Cmd.v (Cmd.info "micro" ~doc:"Bechamel micro-benchmarks of the individual kernels.")
    Term.(const Micro.run $ const ())

let opt_dim_arg =
  Arg.(
    value & opt int 1000
    & info [ "dim" ] ~doc:"Base matrix dimension for the optimizer-ablation workloads.")

(* The ablation resolves few-percent differences, so it defaults to more
   repetitions than the other experiments. *)
let opt_reps_arg =
  Arg.(
    value & opt int 9
    & info [ "reps" ] ~doc:"Repetitions per measurement (best of batches).")

let opt_out_arg =
  Arg.(
    value & opt string "BENCH_opt.json"
    & info [ "out" ] ~doc:"Where to write the machine-readable ablation results.")

let smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "CI mode: one micro SpGEMM config, exit 1 if the full optimizer pipeline is \
           slower than no optimization. Writes no JSON.")

let opt_cmd =
  let run seed reps dim out smoke =
    if smoke then Opt_ablation.smoke () else Opt_ablation.run ~seed ~reps ~dim ~out
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:
         "Ablation of the Imp optimizer pipeline: unoptimized vs each pass alone vs the \
          full pipeline on the paper's workspace kernels.")
    Term.(const run $ seed_arg $ opt_reps_arg $ opt_dim_arg $ opt_out_arg $ smoke_arg)

let cback_dim_arg =
  Arg.(
    value & opt int 1000
    & info [ "dim" ] ~doc:"Base matrix dimension for the backend-comparison workloads.")

let cback_reps_arg =
  Arg.(
    value & opt int 7
    & info [ "reps" ] ~doc:"Repetitions per measurement (best of batches).")

let cback_out_arg =
  Arg.(
    value & opt string "BENCH_cbackend.json"
    & info [ "out" ] ~doc:"Where to write the machine-readable backend comparison.")

let cback_smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "CI mode: one micro SpGEMM built natively, exit 1 if the result is not \
           bit-identical to the closure executor (exit 0 with no C compiler). \
           Writes no JSON.")

let cbackend_cmd =
  let run seed reps dim out smoke =
    if smoke then Cbackend.smoke () else Cbackend.run ~seed ~reps ~dim ~out
  in
  Cmd.v
    (Cmd.info "cbackend"
       ~doc:
         "Closure executor vs the native C backend (kernels compiled to shared objects \
          with the system compiler) on the paper's workspace kernels, with a hard \
          bit-identity gate.")
    Term.(const run $ seed_arg $ cback_reps_arg $ cback_dim_arg $ cback_out_arg
          $ cback_smoke_arg)

let autosched_dim_arg =
  Arg.(
    value & opt int 1000
    & info [ "dim" ] ~doc:"Base matrix dimension for the autoscheduler workloads.")

let autosched_reps_arg =
  Arg.(
    value & opt int 5
    & info [ "reps" ] ~doc:"Repetitions per measurement (median).")

let autosched_out_arg =
  Arg.(
    value & opt string "BENCH_autoschedule.json"
    & info [ "out" ] ~doc:"Where to write the machine-readable plan comparison.")

let autosched_smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "CI mode: one micro SpGEMM, exit 1 if the cost-chosen plan is estimated \
           costlier than the breadth-first plan or its result diverges. Writes no JSON.")

let autosched_cmd =
  let run seed reps dim out smoke =
    if smoke then Autosched_bench.smoke () else Autosched_bench.run ~seed ~reps ~dim ~out
  in
  Cmd.v
    (Cmd.info "autosched"
       ~doc:
         "Cost-based autoscheduler vs the breadth-first policy on unscheduled \
          statements (SpGEMM, SpMV over CSC, MTTKRP, 3-matrix chain), with real \
          per-tensor statistics driving the cost model and a result-identity gate.")
    Term.(const run $ seed_arg $ autosched_reps_arg $ autosched_dim_arg
          $ autosched_out_arg $ autosched_smoke_arg)

let graph_nodes_arg =
  Arg.(
    value & opt int 1500
    & info [ "nodes" ] ~doc:"Node count of the random benchmark graphs (average degree ~8).")

let graph_reps_arg =
  Arg.(
    value & opt int 5 & info [ "reps" ] ~doc:"Repetitions per measurement (best of batches).")

let graph_out_arg =
  Arg.(
    value & opt string "BENCH_graph.json"
    & info [ "out" ] ~doc:"Where to write the machine-readable workload results.")

let graph_cmd =
  let run seed reps nodes out = Graph.run ~seed ~reps ~nodes ~out in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Graph workloads (PageRank, BFS, Bellman-Ford, triangle counting) built on \
          semiring-generalized kernels iterated to fixpoint, closure executor vs the \
          native C backend, with a bit-identity gate between the two.")
    Term.(const run $ seed_arg $ graph_reps_arg $ graph_nodes_arg $ graph_out_arg)

let par_max_domains_arg =
  Arg.(
    value & opt int 4
    & info [ "max-domains" ] ~doc:"Sweep chunk-domain counts 1..N for the parallel kernels.")

let par_out_arg =
  Arg.(
    value & opt string "BENCH_parallel.json"
    & info [ "out" ] ~doc:"Where to write the machine-readable scaling results.")

let par_smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "CI mode: tiny inputs, a 2-domain sweep, exit 1 if any chunked run diverges \
           from the sequential one. Writes no JSON.")

let par_cmd =
  let run seed scale reps max_domains out smoke =
    if smoke then Parallel_scaling.smoke ()
    else Parallel_scaling.run ~seed ~scale ~reps ~max_domains ~out
  in
  Cmd.v
    (Cmd.info "par"
       ~doc:
         "Scaling sweep of the parallelize-scheduled kernels over OCaml domains, with \
          per-point bit-identity checks against the sequential run.")
    Term.(const run $ seed_arg $ scale_arg $ reps_arg $ par_max_domains_arg $ par_out_arg
          $ par_smoke_arg)

let all ~seed ~scale ~tensor_scale ~reps ~add_dim =
  Table1.run ~seed ~scale ~tensor_scale;
  Fig11.run ~seed ~scale ~reps ();
  Fig12.left ~seed ~scale:tensor_scale ~reps ();
  Fig12.right ~seed ~scale:tensor_scale ~reps ();
  Fig13.run ~seed ~dim:add_dim ~reps ()

let all_cmd =
  let run seed scale tensor_scale reps add_dim =
    all ~seed ~scale ~tensor_scale ~reps ~add_dim
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment (the default).")
    Term.(const run $ seed_arg $ scale_arg $ tensor_scale_arg $ reps_arg $ add_dim_arg)

let default =
  let run seed scale tensor_scale reps add_dim =
    all ~seed ~scale ~tensor_scale ~reps ~add_dim
  in
  Term.(const run $ seed_arg $ scale_arg $ tensor_scale_arg $ reps_arg $ add_dim_arg)

let () =
  Taco_support.Obs.setup ();
  let info =
    Cmd.info "taco-workspaces-bench"
      ~doc:"Reproduce the evaluation of 'Tensor Algebra Compilation with Workspaces'."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            table1_cmd;
            fig11_cmd;
            fig12left_cmd;
            fig12right_cmd;
            fig13_cmd;
            ablation_cmd;
            opt_cmd;
            cbackend_cmd;
            autosched_cmd;
            graph_cmd;
            par_cmd;
            micro_cmd;
            all_cmd;
          ]))
